//! Incremental Pseudocode-1 allocator — the same allocation as
//! [`allocate`](crate::allocate()), maintained across calls instead of
//! recomputed from scratch.
//!
//! The central driver calls the allocator after nearly every event; at
//! ten thousand active jobs the eager path (rebuild demands, two
//! `O(n log n)` sorts with `sqrt`-heavy comparators, full fill) is what
//! separates central Hopper from central SRPT by two orders of
//! magnitude. This structure keeps every allocator input cached per job
//! and maintains the Guideline-2 fill order (`max(V, V′)` ascending,
//! job id tie-break — [`cmp_priority`]) as a sorted vector, so that:
//!
//! * a single job's demand change repositions one entry (two binary
//!   searches) and re-runs the fill only from the first affected
//!   position (**sorted-suffix recompute**);
//! * a shared-β change (online learning re-estimates one global β)
//!   rescales every key by the same positive factor, so the refreshed
//!   order is re-sorted with a stable `O(n)`-on-nearly-sorted pass
//!   rather than rebuilt;
//! * an unchanged input set reuses the previous fill outright.
//!
//! **Exactness contract**: after any sequence of `upsert` / `remove` /
//! `set_shared_beta` calls, [`IncrementalAlloc::allocate`] returns slot
//! grants bit-identical to eager [`allocate`](crate::allocate()) over
//! the same demands in ascending-id order. Every derived quantity is
//! either recomputed with the exact same expression over the same cached
//! bits (virtual sizes, `ΣV`, fair floors) or maintained in integer
//! arithmetic (floor sums, fill spare), so no float re-association can
//! drift. The property tests in this module and the golden suites pin
//! the contract.

use crate::allocate::{
    apply_floor_trim, cmp_priority, fair_floor, fair_share_floor, fill_proportional, want_slots,
    AllocConfig, Regime,
};
use crate::vsize::{priority_key, speculation_multiplier, virtual_size};

const NO_SLOT: u32 = u32::MAX;

/// Cached allocator inputs and outputs of one job.
#[derive(Debug, Clone)]
struct Entry {
    remaining: f64,
    downstream: f64,
    alpha: f64,
    beta: f64,
    weight: f64,
    /// Cached `α.sqrt()` — `virtual_size` is the left-associated product
    /// `(m·T)·√α`, so a shared-β refresh can recompute every key with two
    /// multiplies per term, bit-identical to calling `virtual_size`
    /// (IEEE-754 `sqrt` is correctly rounded, hence deterministic).
    sqrt_alpha: f64,
    /// Cached `V = virtual_size(remaining, beta, alpha)`.
    v: f64,
    /// Cached Guideline-2 key `max(V, V′)`.
    prio: f64,
    /// Useful cap `⌈remaining · max_useful_factor⌉` (valid for `params`).
    cap: usize,
    /// Desired slots `min(⌈V⌉, cap)` (valid for `params`).
    want: usize,
    /// ε-fair floor (valid for `params` + current weight total).
    floor: usize,
    /// Cached [`fair_share_floor`] — the `⌊(1−ε)·S·w/Σw⌋` part of the
    /// floor, which does not move with β (valid for `params` + current
    /// weight total).
    share_floor: usize,
    /// Slots granted by the last [`IncrementalAlloc::allocate`].
    granted: usize,
    /// Inputs changed since the last allocate (floor/want stale).
    dirty: bool,
}

/// Allocation-churn counters — how often the incremental allocator
/// recomputed, reused, or suffix-filled. Surfaced on the central
/// driver's `RunOutput` (not on the golden-pinned `RunStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocCounters {
    /// Full or suffix recomputations of the allocation.
    pub recomputes: u64,
    /// Recomputations that refilled only a sorted suffix of the order.
    pub suffix_fills: u64,
    /// Dispatches that reused the previous allocation unchanged.
    pub reuses: u64,
    /// Dispatches that kept a stale allocation under bounded staleness
    /// (`realloc_drift > 0`) even though inputs had changed.
    pub stale_skips: u64,
}

/// Incrementally maintained Pseudocode-1 allocation over a mutable job
/// set. See the module docs for the invariants; see
/// [`allocate`](crate::allocate()) for the allocation semantics.
#[derive(Debug, Clone, Default)]
pub struct IncrementalAlloc {
    slab: Vec<Entry>,
    free: Vec<u32>,
    /// Dense job-id → slab slot map (`NO_SLOT` when absent).
    slot_of: Vec<u32>,
    /// `(job, slot)` ascending by job id — the eager input order.
    ids: Vec<(usize, u32)>,
    /// `(prio, job)` ascending by [`cmp_priority`] — the Guideline-2 fill
    /// order. Keys are the entries' cached priorities.
    order: Vec<(f64, usize)>,
    /// Spare slots remaining *after* filling `order[pos]`, from the last
    /// constrained fill (the suffix-recompute resume points).
    spare_after: Vec<usize>,
    /// Shared β (online learning mode): `Some` ⇒ every entry uses this β
    /// and [`Self::set_shared_beta`] marks a lazy full refresh.
    shared_beta: Option<f64>,
    beta_dirty: bool,
    /// Insert/remove since last allocate: total weight (hence every fair
    /// floor) is stale.
    structure_dirty: bool,
    /// Slots with entry-level dirt since the last allocate.
    dirty: Vec<u32>,
    /// Smallest order position whose key/want/floor changed since the
    /// last fill (`usize::MAX` = none).
    first_dirty_pos: usize,
    /// `Σ weight.max(0)` in id order, refreshed on structure changes.
    total_weight: f64,
    /// Integer floor sum, maintained exactly.
    floor_sum: usize,
    /// `(capacity, eps bits, max_useful_factor bits)` the cached
    /// floors/caps were computed for.
    params: Option<(usize, u64, u64)>,
    last_regime: Option<Regime>,
    last_spare: usize,
    /// Incremental `Σ remaining·√α` (drift metric, shared-β mode).
    norm_sum: f64,
    /// Incremental `Σ V` (drift metric, per-job-β mode). Approximate
    /// (float re-association) — never used for regime decisions.
    v_sum: f64,
    counters: AllocCounters,
}

impl IncrementalAlloc {
    /// Empty allocator. `shared_beta` puts it in shared-β mode (β
    /// learning): per-entry β is ignored in favor of one global value
    /// updated via [`Self::set_shared_beta`].
    pub fn new(shared_beta: Option<f64>) -> Self {
        IncrementalAlloc {
            shared_beta,
            first_dirty_pos: usize::MAX,
            ..Default::default()
        }
    }

    /// Number of jobs currently in the allocator.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the allocator holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether any allocate input changed since the last [`Self::allocate`].
    pub fn is_dirty(&self) -> bool {
        self.beta_dirty || self.structure_dirty || !self.dirty.is_empty()
    }

    /// Churn counters (see [`AllocCounters`]).
    pub fn counters(&self) -> AllocCounters {
        self.counters
    }

    /// Record a dispatch that reused the cache because nothing changed.
    pub fn note_reuse(&mut self) {
        self.counters.reuses += 1;
    }

    /// Record a dispatch that kept a stale allocation under bounded
    /// staleness.
    pub fn note_stale_skip(&mut self) {
        self.counters.stale_skips += 1;
    }

    /// Approximate `ΣV` under the *current* β (pending shared-β updates
    /// included) — the bounded-staleness drift metric. Maintained
    /// incrementally; float re-association makes it approximate, which
    /// is fine for a threshold heuristic but why the exact regime test
    /// in [`Self::allocate`] re-sums fresh.
    pub fn approx_total_virtual(&self) -> f64 {
        match self.shared_beta {
            Some(b) => speculation_multiplier(b) * self.norm_sum,
            None => self.v_sum,
        }
    }

    /// Slots granted to `job` by the last allocate (0 if absent).
    pub fn granted(&self, job: usize) -> usize {
        match self.slot(job) {
            Some(s) => self.slab[s as usize].granted,
            None => 0,
        }
    }

    /// The maintained Guideline-2 fill order: `(priority key, job id)`
    /// ascending by [`cmp_priority`].
    pub fn order(&self) -> &[(f64, usize)] {
        &self.order
    }

    fn slot(&self, job: usize) -> Option<u32> {
        match self.slot_of.get(job) {
            Some(&s) if s != NO_SLOT => Some(s),
            _ => None,
        }
    }

    /// β used for a (new) entry right now.
    fn beta_now(&self, per_job: f64) -> f64 {
        self.shared_beta.unwrap_or(per_job)
    }

    /// Update the global β (shared-β mode). A no-op when the value is
    /// bit-identical; otherwise every key rescales by the same positive
    /// factor and a lazy full refresh is scheduled for the next allocate.
    pub fn set_shared_beta(&mut self, beta: f64) {
        let cur = self
            .shared_beta
            .expect("set_shared_beta requires shared-β mode");
        if beta.to_bits() != cur.to_bits() {
            self.shared_beta = Some(beta);
            self.beta_dirty = true;
        }
    }

    /// Insert `job` or update its demand inputs. `beta` is the per-job
    /// tail index (ignored for existing entries, and in shared-β mode
    /// superseded by the shared value); `weight` the fairness weight.
    pub fn upsert(
        &mut self,
        job: usize,
        remaining: f64,
        downstream: f64,
        alpha: f64,
        beta: f64,
        weight: f64,
    ) {
        match self.slot(job) {
            Some(s) => {
                let si = s as usize;
                let e = &self.slab[si];
                if e.remaining.to_bits() == remaining.to_bits()
                    && e.downstream.to_bits() == downstream.to_bits()
                    && e.alpha.to_bits() == alpha.to_bits()
                {
                    return; // no allocate input changed
                }
                let b = self.slab[si].beta;
                let sqrt_alpha = alpha.sqrt();
                let v = virtual_size(remaining, b, alpha);
                let prio = priority_key(v, virtual_size(downstream, b, alpha));
                let old_prio = self.slab[si].prio;
                self.norm_sum +=
                    remaining * sqrt_alpha - self.slab[si].remaining * self.slab[si].sqrt_alpha;
                self.v_sum += v - self.slab[si].v;
                {
                    let e = &mut self.slab[si];
                    e.remaining = remaining;
                    e.downstream = downstream;
                    e.alpha = alpha;
                    e.sqrt_alpha = sqrt_alpha;
                    e.v = v;
                    e.prio = prio;
                    if !e.dirty {
                        e.dirty = true;
                        self.dirty.push(s);
                    }
                }
                self.reposition(job, old_prio, prio);
            }
            None => {
                let b = self.beta_now(beta);
                let sqrt_alpha = alpha.sqrt();
                let v = virtual_size(remaining, b, alpha);
                let prio = priority_key(v, virtual_size(downstream, b, alpha));
                let entry = Entry {
                    remaining,
                    downstream,
                    alpha,
                    beta: b,
                    weight,
                    sqrt_alpha,
                    v,
                    prio,
                    cap: 0,
                    want: 0,
                    floor: 0,
                    share_floor: 0,
                    granted: 0,
                    dirty: false,
                };
                let s = match self.free.pop() {
                    Some(s) => {
                        self.slab[s as usize] = entry;
                        s
                    }
                    None => {
                        self.slab.push(entry);
                        (self.slab.len() - 1) as u32
                    }
                };
                if self.slot_of.len() <= job {
                    self.slot_of.resize(job + 1, NO_SLOT);
                }
                self.slot_of[job] = s;
                let idp = self.ids.partition_point(|&(j, _)| j < job);
                self.ids.insert(idp, (job, s));
                let op = self
                    .order
                    .partition_point(|&k| cmp_priority(k, (prio, job)).is_lt());
                self.order.insert(op, (prio, job));
                self.first_dirty_pos = self.first_dirty_pos.min(op);
                self.structure_dirty = true;
                self.norm_sum += remaining * sqrt_alpha;
                self.v_sum += v;
            }
        }
    }

    /// Remove a completed job. No-op if absent.
    pub fn remove(&mut self, job: usize) {
        let Some(s) = self.slot(job) else { return };
        let si = s as usize;
        let prio = self.slab[si].prio;
        self.norm_sum -= self.slab[si].remaining * self.slab[si].sqrt_alpha;
        self.v_sum -= self.slab[si].v;
        // Entry-level dirt is subsumed by the structural refresh.
        if self.slab[si].dirty {
            self.dirty.retain(|&d| d != s);
        }
        let idp = self
            .ids
            .binary_search_by(|&(j, _)| j.cmp(&job))
            .expect("present job is indexed");
        self.ids.remove(idp);
        let op = self.order_pos(prio, job);
        self.order.remove(op);
        self.first_dirty_pos = self.first_dirty_pos.min(op);
        self.slot_of[job] = NO_SLOT;
        self.free.push(s);
        self.structure_dirty = true;
    }

    /// Position of `(prio, job)` in the maintained order.
    fn order_pos(&self, prio: f64, job: usize) -> usize {
        let p = self
            .order
            .partition_point(|&k| cmp_priority(k, (prio, job)).is_lt());
        debug_assert!(self.order[p] == (prio, job), "order key out of sync");
        p
    }

    /// Move `job`'s order entry from its old key position to the new one.
    fn reposition(&mut self, job: usize, old_prio: f64, new_prio: f64) {
        if old_prio.to_bits() == new_prio.to_bits() {
            let p = self.order_pos(old_prio, job);
            self.first_dirty_pos = self.first_dirty_pos.min(p);
            return;
        }
        let old_pos = self.order_pos(old_prio, job);
        self.order.remove(old_pos);
        let new_pos = self
            .order
            .partition_point(|&k| cmp_priority(k, (new_prio, job)).is_lt());
        self.order.insert(new_pos, (new_prio, job));
        self.first_dirty_pos = self.first_dirty_pos.min(old_pos.min(new_pos));
    }

    /// Recompute (or suffix-recompute) the allocation. Returns the
    /// regime used. Requires at least one job.
    ///
    /// The result is bit-identical to eager
    /// [`allocate`](crate::allocate()) over the same demands in
    /// ascending-id order (see the module docs for why).
    pub fn allocate(&mut self, capacity: usize, cfg: &AllocConfig) -> Regime {
        assert!(
            (0.0..=1.0).contains(&cfg.fairness_eps),
            "fairness_eps must be within [0,1]"
        );
        assert!(!self.ids.is_empty(), "allocate over an empty job set");
        self.counters.recomputes += 1;
        let params = (
            capacity,
            cfg.fairness_eps.to_bits(),
            cfg.max_useful_factor.to_bits(),
        );
        let params_changed = self.params != Some(params);
        let structural = self.structure_dirty || params_changed;
        let full = self.beta_dirty || structural;

        // Shared-β refresh: rescale every cached size/key, then restore
        // the order with one stable pass (nearly sorted — a positive
        // rescale preserves the mathematical order; only float-rounding
        // near-ties actually move). The keys are recomputed from the
        // cached `√α` with two multiplies each: `virtual_size` is the
        // left-associated product `(m·T)·√α`, so `(m·T)·s` with
        // `s = α.sqrt()` cached produces the exact same bits without the
        // per-entry division and square root (debug-asserted below).
        if self.beta_dirty {
            let b = self.shared_beta.expect("beta_dirty implies shared mode");
            let m = speculation_multiplier(b);
            for &(_, s) in &self.ids {
                let e = &mut self.slab[s as usize];
                e.beta = b;
                e.v = (m * e.remaining) * e.sqrt_alpha;
                e.prio = e.v.max((m * e.downstream) * e.sqrt_alpha);
                debug_assert_eq!(
                    e.v.to_bits(),
                    virtual_size(e.remaining, b, e.alpha).to_bits(),
                    "fast β rescale drifted from virtual_size"
                );
                debug_assert_eq!(
                    e.prio.to_bits(),
                    priority_key(e.v, virtual_size(e.downstream, b, e.alpha)).to_bits(),
                    "fast β rescale drifted from priority_key"
                );
            }
            for k in self.order.iter_mut() {
                k.0 = self.slab[self.slot_of[k.1] as usize].prio;
            }
            self.order.sort_by(|&a, &b| cmp_priority(a, b));
        }

        // Exact regime input: ΣV freshly summed over the cached per-job
        // values in id order — the same adds, in the same order, over the
        // same bits as the eager path.
        let mut total_virtual = 0.0f64;
        for &(_, s) in &self.ids {
            total_virtual += self.slab[s as usize].v;
        }
        let regime = if total_virtual > capacity as f64 {
            Regime::Constrained
        } else {
            Regime::Proportional
        };

        // Floors, caps, and wants — three tiers:
        //  * structural/param change: the weight total moved, so every
        //    fair share (and the cached share floor) is recomputed;
        //  * β-only change: weights, caps, and share floors are all still
        //    valid — only `⌈V⌉` moved, so the pass is integer-only
        //    (one ceil and two mins per entry, no division);
        //  * otherwise entry-local, with an exact integer floor-sum delta.
        if structural {
            self.total_weight = 0.0;
            for &(_, s) in &self.ids {
                self.total_weight += self.slab[s as usize].weight.max(0.0);
            }
            let with_floors = cfg.fairness_eps < 1.0 && self.total_weight > 0.0;
            self.floor_sum = 0;
            for &(_, s) in &self.ids {
                let e = &mut self.slab[s as usize];
                e.cap = (e.remaining * cfg.max_useful_factor).ceil() as usize;
                e.want = want_slots(e.v, e.cap);
                if with_floors {
                    e.share_floor = fair_share_floor(e.weight, capacity, self.total_weight, cfg);
                    e.floor = e.share_floor.min(e.v.ceil() as usize).min(e.cap);
                } else {
                    e.share_floor = 0;
                    e.floor = 0;
                }
                self.floor_sum += e.floor;
                e.dirty = false;
            }
            self.dirty.clear();
        } else if self.beta_dirty {
            let with_floors = cfg.fairness_eps < 1.0 && self.total_weight > 0.0;
            self.floor_sum = 0;
            for &(_, s) in &self.ids {
                let e = &mut self.slab[s as usize];
                if e.dirty {
                    // A demand change rode along with the β update: its
                    // useful cap (remaining-task dependent) is stale too.
                    e.cap = (e.remaining * cfg.max_useful_factor).ceil() as usize;
                    e.dirty = false;
                }
                let vc = e.v.ceil() as usize;
                e.want = vc.min(e.cap);
                e.floor = if with_floors {
                    e.share_floor.min(vc).min(e.cap)
                } else {
                    0
                };
                self.floor_sum += e.floor;
            }
            self.dirty.clear();
        } else {
            let with_floors = cfg.fairness_eps < 1.0 && self.total_weight > 0.0;
            for &s in &self.dirty {
                let e = &mut self.slab[s as usize];
                e.cap = (e.remaining * cfg.max_useful_factor).ceil() as usize;
                e.want = want_slots(e.v, e.cap);
                let floor = if with_floors {
                    fair_floor(e.weight, e.v, e.cap, capacity, self.total_weight, cfg)
                } else {
                    0
                };
                self.floor_sum = self.floor_sum + floor - e.floor;
                e.floor = floor;
                e.dirty = false;
            }
            self.dirty.clear();
        }

        // Oversubscribed floors are impossible with `floor()` rounding
        // (Σ⌊xᵢ⌋ ≤ ⌊Σxᵢ⌋ ≤ capacity) but the eager path keeps a trim
        // guard; mirror it exactly on the rare-to-impossible branch and
        // fall back to a full refresh next round (trimmed floors are
        // transient in the eager path, so they must not linger here).
        let mut floor_sum = self.floor_sum;
        if floor_sum > capacity {
            let mut floors: Vec<usize> = self
                .ids
                .iter()
                .map(|&(_, s)| self.slab[s as usize].floor)
                .collect();
            floor_sum = apply_floor_trim(&mut floors, floor_sum, capacity);
            for (i, &(_, s)) in self.ids.iter().enumerate() {
                self.slab[s as usize].floor = floors[i];
            }
            self.structure_dirty = true; // force full floor rebuild next time
        }
        let spare = capacity - floor_sum;

        let n = self.order.len();
        match regime {
            Regime::Constrained => {
                // Sorted-suffix recompute: when nothing structural moved,
                // the fill prefix before the first dirty order position is
                // untouched — resume from its recorded spare.
                let suffix_ok = !full
                    && self.last_regime == Some(Regime::Constrained)
                    && spare == self.last_spare
                    && self.spare_after.len() == n
                    && self.first_dirty_pos > 0
                    && self.first_dirty_pos < n;
                let start = if suffix_ok {
                    self.counters.suffix_fills += 1;
                    self.first_dirty_pos
                } else {
                    0
                };
                self.spare_after.resize(n, 0);
                let mut left = if start == 0 {
                    spare
                } else {
                    self.spare_after[start - 1]
                };
                for pos in start..n {
                    let job = self.order[pos].1;
                    let e = &mut self.slab[self.slot_of[job] as usize];
                    let grant = e.want.saturating_sub(e.floor).min(left);
                    e.granted = e.floor + grant;
                    left -= grant;
                    self.spare_after[pos] = left;
                }
            }
            Regime::Proportional => {
                let v: Vec<f64> = self
                    .ids
                    .iter()
                    .map(|&(_, s)| self.slab[s as usize].v)
                    .collect();
                let headroom: Vec<usize> = self
                    .ids
                    .iter()
                    .map(|&(_, s)| {
                        let e = &self.slab[s as usize];
                        e.cap.saturating_sub(e.floor)
                    })
                    .collect();
                let extra = fill_proportional(&v, &headroom, spare, total_virtual);
                for (i, &(_, s)) in self.ids.iter().enumerate() {
                    let e = &mut self.slab[s as usize];
                    e.granted = e.floor + extra[i];
                }
                // A proportional fill leaves no valid suffix bookkeeping.
                self.spare_after.clear();
            }
        }

        self.last_regime = Some(regime);
        self.last_spare = spare;
        self.first_dirty_pos = usize::MAX;
        self.beta_dirty = false;
        self.structure_dirty &= floor_sum != self.floor_sum; // keep only the trim fallback
        self.params = Some(params);
        regime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::{allocate, JobDemand};

    /// Deterministic splitmix64 — keeps the tests dependency-free.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Mirror of the driver's demand set: the reference eager input.
    #[derive(Clone)]
    struct Model {
        demands: Vec<JobDemand>,
        shared_beta: Option<f64>,
    }

    impl Model {
        fn eager(&self, capacity: usize, cfg: &AllocConfig) -> Vec<crate::allocate::Allocation> {
            let mut ds = self.demands.clone();
            if let Some(b) = self.shared_beta {
                for d in &mut ds {
                    d.beta = b;
                }
            }
            allocate(&ds, capacity, cfg)
        }
    }

    fn check_equiv(inc: &mut IncrementalAlloc, model: &Model, capacity: usize, cfg: &AllocConfig) {
        if model.demands.is_empty() {
            assert!(inc.is_empty());
            return;
        }
        let regime = inc.allocate(capacity, cfg);
        let eager = model.eager(capacity, cfg);
        for a in &eager {
            assert_eq!(
                inc.granted(a.job),
                a.slots,
                "job {} slots drifted from eager (regime {:?})",
                a.job,
                a.regime
            );
            assert_eq!(regime, a.regime, "regime drifted from eager");
        }
    }

    /// Randomized sequences of upserts / removes / β updates, checked
    /// against the eager allocator after every step, across capacities
    /// that exercise both regimes.
    fn equivalence_run(seed: u64, shared: bool, capacity: usize) {
        let mut rng = Rng(seed);
        let cfgs = [
            AllocConfig::default(),
            AllocConfig::no_fairness(),
            AllocConfig {
                fairness_eps: 0.0,
                ..Default::default()
            },
        ];
        let cfg = &cfgs[(seed % 3) as usize];
        let mut inc = IncrementalAlloc::new(shared.then_some(1.5));
        let mut model = Model {
            demands: vec![],
            shared_beta: shared.then_some(1.5),
        };
        let mut next_job = 0usize;
        for _ in 0..400 {
            match rng.below(10) {
                // Arrival.
                0..=2 => {
                    let d = JobDemand {
                        job: next_job,
                        remaining_tasks: (1 + rng.below(200)) as f64,
                        downstream_tasks: rng.below(100) as f64,
                        alpha: 1.0 + rng.f64() * 3.0,
                        beta: 1.1 + rng.f64(),
                        weight: 1.0,
                    };
                    next_job += 1;
                    inc.upsert(
                        d.job,
                        d.remaining_tasks,
                        d.downstream_tasks,
                        d.alpha,
                        d.beta,
                        d.weight,
                    );
                    model.demands.push(d);
                }
                // Completion.
                3 => {
                    if !model.demands.is_empty() {
                        let i = rng.below(model.demands.len() as u64) as usize;
                        let d = model.demands.remove(i);
                        inc.remove(d.job);
                    }
                }
                // Task finishes / phase transitions / α refresh.
                4..=7 => {
                    if !model.demands.is_empty() {
                        let i = rng.below(model.demands.len() as u64) as usize;
                        let d = &mut model.demands[i];
                        d.remaining_tasks = (d.remaining_tasks - 1.0).max(0.0);
                        if rng.below(4) == 0 {
                            d.downstream_tasks = rng.below(100) as f64;
                        }
                        if rng.below(5) == 0 {
                            d.alpha = 1.0 + rng.f64() * 3.0;
                        }
                        inc.upsert(
                            d.job,
                            d.remaining_tasks,
                            d.downstream_tasks,
                            d.alpha,
                            d.beta,
                            d.weight,
                        );
                    }
                }
                // Shared-β update (no-op in per-job mode, like a run
                // without β learning).
                8 => {
                    if shared {
                        let b = 1.1 + rng.f64();
                        inc.set_shared_beta(b);
                        model.shared_beta = Some(b);
                    }
                }
                // Machine fail/recover: capacity and demands unchanged —
                // must not dirty the allocator at all (satellite: no
                // over-invalidation).
                _ => {
                    let was_dirty = inc.is_dirty();
                    // ... nothing to apply: the allocator has no machine
                    // state by construction; assert dirt did not appear.
                    assert_eq!(inc.is_dirty(), was_dirty);
                }
            }
            check_equiv(&mut inc, &model, capacity, cfg);
        }
    }

    #[test]
    fn equivalent_to_eager_constrained_regime() {
        // Tight capacity ⇒ mostly Guideline 2.
        for seed in 0..6 {
            equivalence_run(seed, seed % 2 == 0, 50);
        }
    }

    #[test]
    fn equivalent_to_eager_proportional_regime() {
        // Plentiful capacity ⇒ mostly Guideline 3.
        for seed in 0..6 {
            equivalence_run(seed, seed % 2 == 0, 100_000);
        }
    }

    #[test]
    fn equivalent_to_eager_mixed_regime() {
        // Mid capacity: ΣV crosses the threshold back and forth.
        for seed in 0..6 {
            equivalence_run(seed, seed % 2 == 0, 2_000);
        }
    }

    #[test]
    fn suffix_fills_actually_happen() {
        // Per-job β (no global rescale), no fairness floors: single-job
        // updates must hit the sorted-suffix path, not full refills.
        let cfg = AllocConfig::no_fairness();
        let mut inc = IncrementalAlloc::new(None);
        for j in 0..64 {
            inc.upsert(j, 10.0 + j as f64, 0.0, 1.0, 1.5, 1.0);
        }
        inc.allocate(100, &cfg);
        for step in 0..32 {
            let j = 40 + (step % 8);
            inc.upsert(j, 80.0 - step as f64, 0.0, 1.0, 1.5, 1.0);
            inc.allocate(100, &cfg);
        }
        let c = inc.counters();
        assert!(
            c.suffix_fills > 0,
            "no suffix recompute in {} recomputes",
            c.recomputes
        );
    }

    #[test]
    fn duplicate_priority_keys_keep_id_order() {
        // Satellite regression: many jobs with the exact same max(V, V′)
        // key must order by job id, and the incremental order must match
        // the eager sort bit-for-bit.
        let cfg = AllocConfig::no_fairness();
        let mut inc = IncrementalAlloc::new(None);
        let mut model = Model {
            demands: vec![],
            shared_beta: None,
        };
        // Insert in a scrambled id order to exercise the tie-break.
        for &j in &[7usize, 2, 9, 0, 5, 1, 8, 3, 6, 4] {
            let d = JobDemand::simple(j, 12.0, 1.6); // identical V for all
            inc.upsert(j, 12.0, 0.0, 1.0, 1.6, 1.0);
            model.demands.push(d);
        }
        model.demands.sort_by_key(|d| d.job);
        check_equiv(&mut inc, &model, 40, &cfg);
        let order: Vec<usize> = inc.order().iter().map(|&(_, j)| j).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>(), "ties must break by id");
    }

    #[test]
    fn comparator_is_a_total_order_with_nan() {
        use std::cmp::Ordering::*;
        // NaN keys order deterministically (total_cmp puts positive NaN
        // after every finite key) instead of collapsing to Equal the way
        // `partial_cmp(..).unwrap_or(Equal)` did — a NaN can no longer
        // scramble the fill order.
        assert_eq!(cmp_priority((f64::NAN, 0), (1.0e300, 1)), Greater);
        assert_eq!(cmp_priority((1.0e300, 1), (f64::NAN, 0)), Less);
        assert_eq!(cmp_priority((f64::NAN, 0), (f64::NAN, 1)), Less);
        // Exact duplicate keys break by job id, antisymmetrically.
        assert_eq!(cmp_priority((2.5, 3), (2.5, 7)), Less);
        assert_eq!(cmp_priority((2.5, 7), (2.5, 3)), Greater);
        assert_eq!(cmp_priority((2.5, 3), (2.5, 3)), Equal);
        // Signed zeros are distinct but deterministic (−0 < +0).
        assert_eq!(cmp_priority((-0.0, 9), (0.0, 1)), Less);
    }

    #[test]
    fn upsert_with_unchanged_inputs_keeps_cache_clean() {
        let cfg = AllocConfig::default();
        let mut inc = IncrementalAlloc::new(None);
        inc.upsert(0, 10.0, 0.0, 1.0, 1.5, 1.0);
        inc.upsert(1, 20.0, 5.0, 2.0, 1.4, 1.0);
        inc.allocate(100, &cfg);
        assert!(!inc.is_dirty());
        inc.upsert(0, 10.0, 0.0, 1.0, 1.5, 1.0); // bit-identical inputs
        assert!(!inc.is_dirty(), "no-op upsert must not invalidate");
        inc.upsert(0, 9.0, 0.0, 1.0, 1.5, 1.0);
        assert!(inc.is_dirty());
    }

    #[test]
    fn shared_beta_noop_keeps_cache_clean() {
        let mut inc = IncrementalAlloc::new(Some(1.5));
        inc.upsert(0, 10.0, 0.0, 1.0, 9.9, 1.0); // per-job β superseded
        inc.allocate(100, &AllocConfig::default());
        inc.set_shared_beta(1.5);
        assert!(!inc.is_dirty(), "bit-identical β must not invalidate");
        inc.set_shared_beta(1.50000001);
        assert!(inc.is_dirty());
    }
}
