//! Virtual job sizes — the paper's central quantity.
//!
//! §4.1 of the paper observes that, with Pareto(β) task durations, the
//! marginal value of giving a job one more slot has a sharp knee at
//! `max(2/β, 1) × T_rem` slots (`T_rem` = remaining tasks): below the knee
//! an extra slot buys prompt speculation and large gains, above it the
//! return is small and decreasing. The knee is the job's *desired minimum
//! allocation*, a.k.a. **virtual size**:
//!
//! ```text
//! V_i(t) = max(2/β, 1) · T_i(t) · sqrt(α_i)      (§4.1–§4.2)
//! ```
//!
//! where `α_i` weighs remaining downstream network transfer against
//! remaining upstream compute for DAGs (√-proportionality, §4.2).

/// The speculation multiplier `max(2/β, 1)`.
///
/// For β ≥ 2 stragglers are mild enough that no slack beyond one slot per
/// task is worth reserving; for 1 < β < 2 (all production traces in the
/// paper) the multiplier is 2/β ∈ (1, 2).
pub fn speculation_multiplier(beta: f64) -> f64 {
    debug_assert!(beta > 0.0, "beta must be positive, got {beta}");
    (2.0 / beta).max(1.0)
}

/// Virtual size of a job: `max(2/β,1) · remaining_tasks · √α`.
///
/// `alpha` is the DAG communication weight (1.0 for single-phase jobs);
/// see [`crate::estimate::AlphaEstimator`]. The result is a float; the
/// allocator quantizes to integer slots.
///
/// The paper's formula (§4.1, extended to DAGs by §4.2's √α weighting):
///
/// ```
/// use hopper_core::virtual_size;
///
/// // 200 remaining tasks at β = 1.6: V = (2/1.6) · 200 = 250 slots.
/// assert_eq!(virtual_size(200.0, 1.6, 1.0), 250.0);
/// // A communication-heavy DAG (α = 4) wants √4 = 2× the slots.
/// assert_eq!(virtual_size(200.0, 1.6, 4.0), 500.0);
/// // Light tails (β ≥ 2) floor the multiplier at 1 — no speculation slack.
/// assert_eq!(virtual_size(200.0, 2.5, 1.0), 200.0);
/// ```
pub fn virtual_size(remaining_tasks: f64, beta: f64, alpha: f64) -> f64 {
    debug_assert!(remaining_tasks >= 0.0);
    debug_assert!(alpha >= 0.0);
    speculation_multiplier(beta) * remaining_tasks * alpha.sqrt()
}

/// The priority key used to order jobs under Guideline 2.
///
/// For DAGs the paper (§4.2) replaces plain virtual-size ordering with
/// `max{V_i(t), V'_i(t)}` where `V'` is the virtual remaining communication
/// work of the downstream phase — a job is "small" only if both its current
/// phase and its downstream transfer are small (2-speed optimality, their
/// footnote 6 citing \[31\]).
pub fn priority_key(v_current: f64, v_downstream: f64) -> f64 {
    v_current.max(v_downstream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplier_is_two_over_beta_in_trace_range() {
        assert!((speculation_multiplier(1.4) - 2.0 / 1.4).abs() < 1e-12);
        assert!((speculation_multiplier(1.6) - 1.25).abs() < 1e-12);
        assert!((speculation_multiplier(1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn multiplier_floors_at_one_for_light_tails() {
        assert_eq!(speculation_multiplier(2.0), 1.0);
        assert_eq!(speculation_multiplier(3.5), 1.0);
    }

    #[test]
    fn virtual_size_matches_paper_formula() {
        // Job with 200 remaining tasks, β = 1.6: V = 1.25 × 200 = 250.
        assert!((virtual_size(200.0, 1.6, 1.0) - 250.0).abs() < 1e-9);
        // β = 1.4: V = (2/1.4) × 200 ≈ 285.7.
        assert!((virtual_size(200.0, 1.4, 1.0) - 2.0 / 1.4 * 200.0).abs() < 1e-9);
    }

    #[test]
    fn sqrt_alpha_scaling() {
        let base = virtual_size(100.0, 1.5, 1.0);
        let heavy_comm = virtual_size(100.0, 1.5, 4.0);
        assert!((heavy_comm - 2.0 * base).abs() < 1e-9, "√4 = 2× scaling");
        let light_comm = virtual_size(100.0, 1.5, 0.25);
        assert!((light_comm - 0.5 * base).abs() < 1e-9);
    }

    #[test]
    fn zero_tasks_zero_size() {
        assert_eq!(virtual_size(0.0, 1.5, 1.0), 0.0);
    }

    #[test]
    fn priority_key_takes_max() {
        assert_eq!(priority_key(10.0, 25.0), 25.0);
        assert_eq!(priority_key(30.0, 25.0), 30.0);
    }
}
