//! Conservative-PDES support types for sharded simulation engines.
//!
//! A sharded engine partitions its entities (schedulers, workers)
//! across N shards, each with its own event heap, and advances them in
//! lockstep *windows* bounded by the safe horizon
//! `min(next event across shards) + lookahead`, where the lookahead is
//! the engine's minimum cross-entity message latency. Every event
//! carries an [`EventKey`] — `(time, origin entity, per-origin
//! sequence)` — so each shard pops its heap in a total order that does
//! not depend on how entities were partitioned: per-origin sequence
//! numbers are assigned by the emitting entity in its own deterministic
//! emission order, and entities on different shards interact only
//! through messages that pay at least the lookahead. Together those two
//! facts make the execution bit-identical for every shard count (the
//! invariant `tests/shard.rs` pins; see DESIGN.md, "Sharded
//! execution").

use hopper_sim::SimTime;
use std::sync::{Condvar, Mutex};

/// Total-order key of one simulation event: timestamp, emitting entity,
/// and the entity's own emission sequence number. Keys are unique (an
/// origin never reuses a sequence number), so a heap ordered by
/// `EventKey` is a deterministic total order regardless of insertion
/// order — the property that makes cross-shard mailbox delivery order
/// irrelevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Simulation instant the event fires.
    pub time: SimTime,
    /// Emitting entity (engine-defined numbering; e.g. schedulers then
    /// workers). Ties at equal time break by origin, then sequence.
    pub origin: u64,
    /// The origin's emission counter at send — unique per origin.
    pub seq: u64,
}

/// The conservative-window bound: the earliest instant at which any
/// shard could be affected by another shard's not-yet-executed work.
/// With every cross-shard interaction paying at least `lookahead`, all
/// events strictly before `min(next event) + lookahead` are safe to
/// execute without further synchronization (classic conservative PDES;
/// the message-latency floor is the lookahead). Returns `None` when no
/// shard has a pending event — global termination.
pub fn safe_horizon<I>(next_events: I, lookahead: SimTime) -> Option<SimTime>
where
    I: IntoIterator<Item = Option<SimTime>>,
{
    next_events
        .into_iter()
        .flatten()
        .min()
        .map(|t| t + lookahead)
}

/// A timestamped inter-shard channel: shard pairs exchange messages by
/// posting `(key, payload)` into the destination's mailbox during a
/// window and draining it at the next barrier. Posting order across
/// sending shards is racy, but every message carries its unique
/// [`EventKey`], so the receiving heap re-establishes the one
/// deterministic order.
#[derive(Debug, Default)]
pub struct Mailbox<T> {
    inbox: Mutex<Vec<(EventKey, T)>>,
}

impl<T> Mailbox<T> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            inbox: Mutex::new(Vec::new()),
        }
    }

    /// Post one message for the owning shard to pick up at its next
    /// drain.
    pub fn post(&self, key: EventKey, msg: T) {
        self.inbox
            .lock()
            .expect("mailbox poisoned")
            .push((key, msg));
    }

    /// Take everything posted since the last drain.
    pub fn drain(&self) -> Vec<(EventKey, T)> {
        std::mem::take(&mut *self.inbox.lock().expect("mailbox poisoned"))
    }

    /// Post a whole window's worth of messages under one lock — shards
    /// buffer their cross-shard sends locally during a window and flush
    /// once at the barrier.
    pub fn post_many(&self, items: Vec<(EventKey, T)>) {
        if items.is_empty() {
            return;
        }
        self.inbox.lock().expect("mailbox poisoned").extend(items);
    }
}

/// A reusable rendezvous barrier with *poisoning*: when one shard
/// panics (a failed invariant, a debug assertion), it poisons the
/// barrier on unwind and every peer blocked at — or later arriving at —
/// the barrier panics too, instead of deadlocking forever waiting for a
/// participant that will never come. `std::sync::Barrier` has no such
/// escape hatch, which turns any single-shard panic in a test run into
/// a hang.
#[derive(Debug)]
pub struct SyncBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    parties: usize,
}

#[derive(Debug)]
struct BarrierState {
    waiting: usize,
    generation: u64,
    poisoned: bool,
}

impl SyncBarrier {
    /// A barrier for `parties` participants.
    pub fn new(parties: usize) -> Self {
        SyncBarrier {
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            parties: parties.max(1),
        }
    }

    /// Block until all parties arrive. Panics if the barrier was (or
    /// becomes, while waiting) poisoned by a panicking peer.
    pub fn wait(&self) {
        let mut st = self.state.lock().expect("barrier lock poisoned");
        assert!(!st.poisoned, "peer shard panicked (barrier poisoned)");
        let gen = st.generation;
        st.waiting += 1;
        if st.waiting == self.parties {
            st.waiting = 0;
            st.generation += 1;
            self.cv.notify_all();
            return;
        }
        while st.generation == gen && !st.poisoned {
            st = self.cv.wait(st).expect("barrier lock poisoned");
        }
        assert!(!st.poisoned, "peer shard panicked (barrier poisoned)");
    }

    /// Mark the barrier dead and wake every waiter (each then panics).
    /// Called from a drop guard on a shard's unwind path.
    pub fn poison(&self) {
        if let Ok(mut st) = self.state.lock() {
            st.poisoned = true;
        }
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn keys_order_by_time_then_origin_then_seq() {
        let a = EventKey {
            time: ms(5),
            origin: 9,
            seq: 3,
        };
        let b = EventKey {
            time: ms(6),
            origin: 0,
            seq: 0,
        };
        let c = EventKey {
            time: ms(5),
            origin: 10,
            seq: 0,
        };
        let d = EventKey {
            time: ms(5),
            origin: 9,
            seq: 4,
        };
        assert!(a < b && a < c && a < d);
        assert!(c < b && d < c);
    }

    #[test]
    fn safe_horizon_is_min_plus_lookahead() {
        let h = safe_horizon([Some(ms(10)), None, Some(ms(7))], ms(1));
        assert_eq!(h, Some(ms(8)));
        assert_eq!(safe_horizon([None, None], ms(1)), None);
    }

    #[test]
    fn mailbox_round_trips() {
        let mb: Mailbox<&'static str> = Mailbox::new();
        let k = |t: u64| EventKey {
            time: ms(t),
            origin: 0,
            seq: t,
        };
        mb.post(k(2), "b");
        mb.post(k(1), "a");
        let got = mb.drain();
        assert_eq!(got.len(), 2);
        assert!(mb.drain().is_empty());
        mb.post_many(vec![(k(3), "c"), (k(4), "d")]);
        assert_eq!(mb.drain().len(), 2);
    }

    #[test]
    fn barrier_synchronizes_two_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let b = SyncBarrier::new(2);
        let hits = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..50 {
                        hits.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // Every round, both threads must have bumped.
                        assert_eq!(hits.load(Ordering::SeqCst) % 2, 0);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 100);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poisoned_barrier_releases_waiters() {
        let b = SyncBarrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                b.poison();
            });
            b.wait(); // would deadlock forever without the poison
        });
    }
}
