//! **Figure 10** — the fairness knob ε: (a) gains vs ε, (b) fraction of
//! jobs slowed versus a perfectly fair allocation, (c) the magnitude of
//! those slowdowns.
//!
//! The paper: gains rise quickly with ε and flatten past ~15%; at
//! ε = 10% fewer than 4% of jobs slow down, with bounded magnitudes.

use hopper_decentral::{run, DecPolicy};
use hopper_metrics::{reduction_pct, GainCdf, Table};

fn main() {
    hopper_bench::banner("Figure 10", "ε-fairness: gains, slowdowns, magnitudes");
    let seeds = hopper_bench::seeds();

    let mut table = Table::new(
        "decentralized Hopper at 60% utilization (baseline: ε = 0)",
        &[
            "ε",
            "gain vs SparrowSRPT",
            "jobs slowed vs ε=0",
            "avg slowdown",
            "worst",
        ],
    );
    for eps in [0.0, 0.05, 0.10, 0.15, 0.20, 0.30] {
        let mut srpt = 0.0;
        let mut hop = 0.0;
        let mut slowed = 0.0;
        let mut avg_slow = 0.0;
        let mut worst_slow = 0.0f64;
        for seed in 0..seeds {
            let mut cfg = hopper_bench::decentral_cfg(seed);
            let slots = cfg.cluster.total_slots();
            let trace = hopper_bench::fb_interactive_trace(seed, 0.6, slots);
            srpt += run(&trace, DecPolicy::SparrowSrpt, &cfg).mean_duration_ms();
            cfg.fairness_eps = Some(0.0);
            let fair = run(&trace, DecPolicy::Hopper, &cfg);
            cfg.fairness_eps = Some(eps);
            let out = run(&trace, DecPolicy::Hopper, &cfg);
            hop += out.mean_duration_ms();
            let cdf = GainCdf::between(&fair.jobs, &out.jobs);
            slowed += cdf.fraction_slowed();
            let (a, w) = cdf.slowdown_magnitude();
            avg_slow += a;
            worst_slow = worst_slow.max(w);
        }
        table.row(&[
            format!("{:.0}%", eps * 100.0),
            format!("{:.1}%", reduction_pct(srpt, hop)),
            format!("{:.1}%", slowed / seeds as f64 * 100.0),
            format!("{:.1}%", avg_slow / seeds as f64),
            format!("{worst_slow:.1}%"),
        ]);
    }
    table.print();
}
