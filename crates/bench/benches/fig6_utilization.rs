//! **Figure 6** — decentralized Hopper's overall gains vs cluster
//! utilization, on the Facebook-like (6a) and Bing-like (6b) workloads.
//!
//! The paper: 50–60% reduction in average job duration at 60%
//! utilization vs Sparrow and Sparrow-SRPT, tapering below 20% beyond
//! 80%; Bing slightly higher than Facebook.

use hopper_decentral::{run, DecPolicy};
use hopper_metrics::{reduction_pct, Table};

fn main() {
    hopper_bench::banner("Figure 6", "reduction in average JCT vs utilization");
    let seeds = hopper_bench::seeds();

    for workload in ["facebook", "bing"] {
        let mut table = Table::new(
            &format!("{workload} workload (Hopper(dec) vs baselines)"),
            &["utilization", "vs Sparrow", "vs Sparrow-SRPT"],
        );
        for util in [0.6, 0.7, 0.8, 0.9] {
            let (mut sp, mut ss, mut h) = (0.0, 0.0, 0.0);
            for seed in 0..seeds {
                let cfg = hopper_bench::decentral_cfg(seed);
                let slots = cfg.cluster.total_slots();
                let trace = if workload == "facebook" {
                    hopper_bench::fb_interactive_trace(seed, util, slots)
                } else {
                    hopper_bench::bing_interactive_trace(seed, util, slots)
                };
                sp += run(&trace, DecPolicy::Sparrow, &cfg).mean_duration_ms();
                ss += run(&trace, DecPolicy::SparrowSrpt, &cfg).mean_duration_ms();
                h += run(&trace, DecPolicy::Hopper, &cfg).mean_duration_ms();
            }
            table.row(&[
                format!("{:.0}%", util * 100.0),
                format!("{:.1}%", reduction_pct(sp, h)),
                format!("{:.1}%", reduction_pct(ss, h)),
            ]);
        }
        table.print();
    }
}
