//! **Figure 6** — decentralized Hopper's overall gains vs cluster
//! utilization, on the Facebook-like (6a) and Bing-like (6b) workloads.
//!
//! The paper: 50–60% reduction in average job duration at 60%
//! utilization vs Sparrow and Sparrow-SRPT, tapering below 20% beyond
//! 80%; Bing slightly higher than Facebook. One `sweep` over the
//! utilization axis per policy; traces are shared across policies by
//! sharing seeds.

use hopper_experiment::{sweep, SweepAxis};
use hopper_metrics::{reduction_pct, Table};

fn main() {
    hopper_bench::banner("Figure 6", "reduction in average JCT vs utilization");
    let utils = [0.6, 0.7, 0.8, 0.9];
    let axis = SweepAxis::new("util", &utils);

    for workload in ["facebook", "bing"] {
        let run = |policy: &str| {
            sweep(
                &hopper_bench::decentral_spec(policy, workload, utils[0]),
                &axis,
            )
            .expect("fig6 sweep")
        };
        let sparrow = run("sparrow");
        let sparrow_srpt = run("sparrow-srpt");
        let hopper = run("hopper");

        let mut table = Table::new(
            &format!("{workload} workload (Hopper(dec) vs baselines)"),
            &["utilization", "vs Sparrow", "vs Sparrow-SRPT"],
        );
        for util in utils {
            let v = util.to_string();
            table.row(&[
                format!("{:.0}%", util * 100.0),
                format!(
                    "{:.1}%",
                    reduction_pct(sparrow.mean_for(&v), hopper.mean_for(&v))
                ),
                format!(
                    "{:.1}%",
                    reduction_pct(sparrow_srpt.mean_for(&v), hopper.mean_for(&v))
                ),
            ]);
        }
        table.print();
    }
}
