//! **Figure 9** — Hopper's gains are independent of the straggler-
//! mitigation algorithm: LATE, Mantri, and GRASS each paired with
//! Hopper vs with Sparrow-SRPT.
//!
//! The paper: remarkably similar gains across all three — resource
//! allocation across jobs matters more than the mitigation rule within
//! a job.

use hopper_decentral::{run, DecPolicy};
use hopper_metrics::{mean_duration_in_bin, reduction_pct, SizeBin, Table};
use hopper_sim::SimTime;
use hopper_spec::{SpecConfig, Speculator};

fn main() {
    hopper_bench::banner("Figure 9", "gains by speculation algorithm, 60% util");
    let seeds = hopper_bench::seeds();
    let spec_cfg = SpecConfig {
        min_elapsed: SimTime::from_millis(300),
        ..Default::default()
    };
    let algos: Vec<(&str, Speculator)> = vec![
        ("LATE", Speculator::Late(spec_cfg.clone())),
        ("Mantri", Speculator::Mantri(spec_cfg.clone())),
        ("GRASS", Speculator::Grass(spec_cfg.clone())),
    ];

    let mut table = Table::new(
        "reduction vs Sparrow-SRPT with the same speculation algorithm",
        &["algorithm", "overall", "<50", "51-150", "151-500", ">500"],
    );
    for (name, spec) in algos {
        let mut overall = (0.0, 0.0);
        let mut bins = [(0.0, 0.0); 4];
        for seed in 0..seeds {
            let mut cfg = hopper_bench::decentral_cfg(seed);
            cfg.speculator = spec.clone();
            let slots = cfg.cluster.total_slots();
            let trace = hopper_bench::fb_interactive_trace(seed, 0.6, slots);
            let base = run(&trace, DecPolicy::SparrowSrpt, &cfg);
            let hop = run(&trace, DecPolicy::Hopper, &cfg);
            overall.0 += base.mean_duration_ms();
            overall.1 += hop.mean_duration_ms();
            for (i, bin) in SizeBin::all().into_iter().enumerate() {
                if let (Some(b), Some(h)) = (
                    mean_duration_in_bin(&base.jobs, bin),
                    mean_duration_in_bin(&hop.jobs, bin),
                ) {
                    bins[i].0 += b;
                    bins[i].1 += h;
                }
            }
        }
        let fmt = |pair: (f64, f64)| {
            if pair.0 == 0.0 {
                "n/a".to_string()
            } else {
                format!("{:.1}%", reduction_pct(pair.0, pair.1))
            }
        };
        table.row(&[
            name.to_string(),
            fmt(overall),
            fmt(bins[0]),
            fmt(bins[1]),
            fmt(bins[2]),
            fmt(bins[3]),
        ]);
    }
    table.print();
}
