//! **Figure 5a** — the power of many choices: decentralized performance
//! (relative to centralized Hopper) vs the probe count `d`.
//!
//! The paper's simulation (50 schedulers, 10 000 workers, β = 1.5) shows
//! decentralized Hopper converging to within ~15% of the centralized
//! scheduler by d = 4, while Sparrow stays >100% off at medium-high
//! utilization. We run a scaled cluster with the same structure, as one
//! `sweep` over the probe-count axis per policy — seeds fan out over
//! worker threads.

use hopper_experiment::{mean_jct, run_seeds, sweep, SweepAxis};
use hopper_metrics::Table;

fn main() {
    hopper_bench::banner(
        "Figure 5a",
        "JCT ratio over centralized Hopper vs probe count d",
    );
    let utils = [0.6, 0.8, 0.9];
    let ds = [2.0, 3.0, 4.0, 6.0, 8.0, 10.0];
    let axis = SweepAxis::new("probe_ratio", &ds);

    for util in utils {
        let mut base = hopper_bench::decentral_spec("hopper", "facebook", util);
        base.fixed_beta = Some(1.5);

        // Centralized Hopper reference on the same cluster and traces.
        let central = hopper_bench::centralized_reference(&base);
        let central_trials = run_seeds(&central).expect("central reference");
        let central_mean = mean_jct(&central_trials);

        let hopper = sweep(&base, &axis).expect("hopper sweep");
        let mut sparrow_spec = base.clone();
        sparrow_spec.policy = "sparrow".to_string();
        let sparrow = sweep(&sparrow_spec, &axis).expect("sparrow sweep");

        let mut table = Table::new(
            &format!(
                "utilization {:.0}% (centralized Hopper = 1.0)",
                util * 100.0
            ),
            &["d", "Hopper(dec) ratio", "Sparrow ratio"],
        );
        for d in ds {
            let v = d.to_string();
            table.row(&[
                format!("{d:.0}"),
                format!("{:.2}", hopper.mean_for(&v) / central_mean),
                format!("{:.2}", sparrow.mean_for(&v) / central_mean),
            ]);
        }
        table.print();
    }
}
