//! **Figure 5a** — the power of many choices: decentralized performance
//! (relative to centralized Hopper) vs the probe count `d`.
//!
//! The paper's simulation (50 schedulers, 10 000 workers, β = 1.5) shows
//! decentralized Hopper converging to within ~15% of the centralized
//! scheduler by d = 4, while Sparrow stays >100% off at medium-high
//! utilization. We run a scaled cluster with the same structure.

use hopper_central as central;
use hopper_decentral::{run, DecPolicy};
use hopper_metrics::Table;
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn main() {
    hopper_bench::banner(
        "Figure 5a",
        "JCT ratio over centralized Hopper vs probe count d",
    );
    let seeds = hopper_bench::seeds();
    let utils = [0.6, 0.8, 0.9];
    let ds = [2.0, 3.0, 4.0, 6.0, 8.0, 10.0];

    for util in utils {
        // Centralized Hopper reference on the same cluster and trace.
        let mut central_mean = 0.0;
        for seed in 0..seeds {
            let dcfg = hopper_bench::decentral_cfg(seed);
            let slots = dcfg.cluster.total_slots();
            let profile = WorkloadProfile::facebook().interactive().fixed_beta(1.5);
            let trace = TraceGenerator::new(profile, hopper_bench::jobs(), seed)
                .generate_with_utilization(slots, util);
            let ccfg = central::SimConfig {
                cluster: dcfg.cluster.clone(),
                scan_interval: dcfg.scan_interval,
                speculator: dcfg.speculator.clone(),
                seed,
                ..Default::default()
            };
            central_mean += central::run(
                &trace,
                &central::Policy::Hopper(central::HopperConfig::default()),
                &ccfg,
            )
            .mean_duration_ms();
        }
        central_mean /= seeds as f64;

        let mut table = Table::new(
            &format!(
                "utilization {:.0}% (centralized Hopper = 1.0)",
                util * 100.0
            ),
            &["d", "Hopper(dec) ratio", "Sparrow ratio"],
        );
        for d in ds {
            let mut h = 0.0;
            let mut s = 0.0;
            for seed in 0..seeds {
                let mut cfg = hopper_bench::decentral_cfg(seed);
                cfg.probe_ratio = d;
                let slots = cfg.cluster.total_slots();
                let profile = WorkloadProfile::facebook().interactive().fixed_beta(1.5);
                let trace = TraceGenerator::new(profile, hopper_bench::jobs(), seed)
                    .generate_with_utilization(slots, util);
                h += run(&trace, DecPolicy::Hopper, &cfg).mean_duration_ms();
                s += run(&trace, DecPolicy::Sparrow, &cfg).mean_duration_ms();
            }
            table.row(&[
                format!("{d:.0}"),
                format!("{:.2}", h / seeds as f64 / central_mean),
                format!("{:.2}", s / seeds as f64 / central_mean),
            ]);
        }
        table.print();
    }
}
