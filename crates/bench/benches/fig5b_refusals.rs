//! **Figure 5b** — impact of the refusal threshold on decentralized
//! Hopper (ratio over centralized Hopper).
//!
//! The paper: two or three refusals bring performance within 10–15% of
//! the centralized scheduler; more refusals give a better view but cost
//! messages and idle time.

use hopper_central as central;
use hopper_decentral::{run, DecPolicy};
use hopper_metrics::Table;
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn main() {
    hopper_bench::banner(
        "Figure 5b",
        "JCT ratio over centralized Hopper vs refusal count",
    );
    let seeds = hopper_bench::seeds();

    for util in [0.6, 0.8] {
        let mut central_mean = 0.0;
        for seed in 0..seeds {
            let dcfg = hopper_bench::decentral_cfg(seed);
            let slots = dcfg.cluster.total_slots();
            let profile = WorkloadProfile::facebook().interactive().fixed_beta(1.5);
            let trace = TraceGenerator::new(profile, hopper_bench::jobs(), seed)
                .generate_with_utilization(slots, util);
            let ccfg = central::SimConfig {
                cluster: dcfg.cluster.clone(),
                scan_interval: dcfg.scan_interval,
                speculator: dcfg.speculator.clone(),
                seed,
                ..Default::default()
            };
            central_mean += central::run(
                &trace,
                &central::Policy::Hopper(central::HopperConfig::default()),
                &ccfg,
            )
            .mean_duration_ms();
        }
        central_mean /= seeds as f64;

        let mut table = Table::new(
            &format!(
                "utilization {:.0}% (centralized Hopper = 1.0)",
                util * 100.0
            ),
            &["refusal threshold", "Hopper(dec) ratio", "G3 switches/run"],
        );
        for threshold in [0usize, 1, 2, 3, 5, 10] {
            let mut h = 0.0;
            let mut g3 = 0u64;
            for seed in 0..seeds {
                let mut cfg = hopper_bench::decentral_cfg(seed);
                cfg.refusal_threshold = threshold;
                let slots = cfg.cluster.total_slots();
                let profile = WorkloadProfile::facebook().interactive().fixed_beta(1.5);
                let trace = TraceGenerator::new(profile, hopper_bench::jobs(), seed)
                    .generate_with_utilization(slots, util);
                let out = run(&trace, DecPolicy::Hopper, &cfg);
                h += out.mean_duration_ms();
                g3 += out.stats.guideline3_switches;
            }
            table.row(&[
                threshold.to_string(),
                format!("{:.2}", h / seeds as f64 / central_mean),
                (g3 / seeds).to_string(),
            ]);
        }
        table.print();
    }
}
