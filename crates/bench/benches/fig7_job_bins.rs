//! **Figure 7** — decentralized Hopper's gains over Sparrow-SRPT, binned
//! by job size (number of tasks), at 60% utilization.
//!
//! The paper: small jobs gain 18–32% (the SRPT baseline already favors
//! them); large jobs gain >50% — the value of coordinating speculation
//! grows with the number of tasks.

use hopper_decentral::{run, DecPolicy};
use hopper_metrics::{mean_duration_in_bin, reduction_pct, SizeBin, Table};

fn main() {
    hopper_bench::banner(
        "Figure 7",
        "gains over Sparrow-SRPT by job-size bin, 60% util",
    );
    let seeds = hopper_bench::seeds();

    for workload in ["facebook", "bing"] {
        let mut table = Table::new(
            &format!("{workload} workload"),
            &["job bin (tasks)", "jobs", "reduction vs Sparrow-SRPT"],
        );
        // Accumulate bin means across seeds.
        let mut bin_base = [0.0f64; 4];
        let mut bin_hopper = [0.0f64; 4];
        let mut bin_count = [0usize; 4];
        let mut overall_base = 0.0;
        let mut overall_hopper = 0.0;
        for seed in 0..seeds {
            let cfg = hopper_bench::decentral_cfg(seed);
            let slots = cfg.cluster.total_slots();
            let trace = if workload == "facebook" {
                hopper_bench::fb_interactive_trace(seed, 0.6, slots)
            } else {
                hopper_bench::bing_interactive_trace(seed, 0.6, slots)
            };
            let base = run(&trace, DecPolicy::SparrowSrpt, &cfg);
            let hop = run(&trace, DecPolicy::Hopper, &cfg);
            overall_base += base.mean_duration_ms();
            overall_hopper += hop.mean_duration_ms();
            for (i, bin) in SizeBin::all().into_iter().enumerate() {
                if let (Some(b), Some(h)) = (
                    mean_duration_in_bin(&base.jobs, bin),
                    mean_duration_in_bin(&hop.jobs, bin),
                ) {
                    bin_base[i] += b;
                    bin_hopper[i] += h;
                    bin_count[i] += base
                        .jobs
                        .iter()
                        .filter(|r| SizeBin::of(r.size_tasks) == bin)
                        .count();
                }
            }
        }
        table.row(&[
            "Overall".into(),
            "all".into(),
            format!("{:.1}%", reduction_pct(overall_base, overall_hopper)),
        ]);
        for (i, bin) in SizeBin::all().into_iter().enumerate() {
            if bin_count[i] == 0 {
                table.row(&[bin.label().into(), "0".into(), "n/a".into()]);
            } else {
                table.row(&[
                    bin.label().into(),
                    bin_count[i].to_string(),
                    format!("{:.1}%", reduction_pct(bin_base[i], bin_hopper[i])),
                ]);
            }
        }
        table.print();
    }
}
