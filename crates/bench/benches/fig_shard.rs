//! Sharded-engine scaling bench (`cargo bench --bench fig_shard`).
//!
//! Not a paper figure: it measures the conservative-PDES engine's
//! events/sec as a function of shard count on one large decentralized
//! scenario, with and without the message-fault storm (faults shrink the
//! conservative windows' useful work per barrier, so they are the
//! pessimistic case for shard scaling). Because every shard count `>= 1`
//! is bit-identical, the bench also doubles as a large-scale equivalence
//! check: it asserts the event count and makespan match the shards=1
//! reference in every cell before reporting a number.
//!
//! The serial driver (`shards=0`) is reported once per fault mode as
//! context — it runs a *different* (documented) equivalence family with
//! its own event count, so its line carries `engine:"serial"` and is not
//! comparable event-for-event with the sharded rows.
//!
//! One machine-parseable JSON line per cell, like `throughput`. Sizing
//! knobs (CI smoke shrinks them; BENCH_8.json records the defaults):
//!
//! - `HOPPER_BENCH_JOBS`         — jobs per trace (default 100 000)
//! - `HOPPER_BENCH_MACHINES`     — cluster size (default 2 000)
//! - `HOPPER_BENCH_SHARD_COUNTS` — comma-separated shard counts
//!   (default `1,2,4`)
//! - `HOPPER_BENCH_FAULTS`       — `on,off` filter (default both)

use std::time::Instant;

use hopper_cluster::ClusterConfig;
use hopper_decentral::{self as decentral, DecConfig, DecPolicy, FaultConfig};
use hopper_sim::SimTime;
use hopper_workload::{Trace, TraceGenerator, WorkloadProfile};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn trace(seed: u64, jobs: usize, total_slots: usize) -> Trace {
    let profile = WorkloadProfile::facebook().interactive().single_phase();
    TraceGenerator::new(profile, jobs, seed).generate_with_utilization(total_slots, 0.7)
}

/// The storm used for the faults-on axis: the acceptance loss rate with
/// jitter and duplication (scheduler crashes excluded so the faulted
/// cells finish in bench-budget time at 100k jobs).
fn storm() -> FaultConfig {
    FaultConfig {
        msg_loss: 0.02,
        msg_jitter_ms: 5,
        msg_dup: 0.02,
        ..FaultConfig::off()
    }
}

struct Cell {
    events: u64,
    wall_ms: f64,
    makespan: SimTime,
    mean_ms: f64,
    jobs_done: usize,
    shard: Option<decentral::ShardStats>,
}

fn run_cell(t: &Trace, machines: usize, faults: bool, shards: usize, seed: u64) -> Cell {
    let cfg = DecConfig {
        cluster: ClusterConfig {
            machines,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        num_schedulers: 20,
        scan_interval: SimTime::from_millis(1000),
        seed,
        shards,
        faults: if faults { storm() } else { FaultConfig::off() },
        ..Default::default()
    };
    let start = Instant::now();
    let out = decentral::run(t, DecPolicy::Hopper, &cfg);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    Cell {
        events: out.stats.events,
        wall_ms,
        makespan: out.stats.makespan,
        mean_ms: out.mean_duration_ms(),
        jobs_done: out.jobs.len(),
        shard: out.shard,
    }
}

fn report(engine: &str, faults: bool, shards: usize, jobs: usize, machines: usize, c: &Cell) {
    let eps = if c.wall_ms > 0.0 {
        c.events as f64 / (c.wall_ms / 1000.0)
    } else {
        f64::INFINITY
    };
    let (windows, stalls, cross) = c
        .shard
        .as_ref()
        .map_or((0, 0, 0), |s| (s.windows, s.horizon_stalls, s.cross_msgs));
    println!(
        "{{\"bench\":\"fig_shard\",\"engine\":\"{engine}\",\"faults\":{faults},\
         \"shards\":{shards},\"jobs\":{jobs},\"machines\":{machines},\
         \"events\":{},\"wall_ms\":{:.1},\"events_per_sec\":{eps:.0},\
         \"mean_job_duration_ms\":{:.1},\"makespan_ms\":{},\
         \"windows\":{windows},\"horizon_stalls\":{stalls},\"cross_msgs\":{cross}}}",
        c.events,
        c.wall_ms,
        c.mean_ms,
        c.makespan.as_millis()
    );
}

fn main() {
    let jobs = env_usize("HOPPER_BENCH_JOBS", 100_000);
    let machines = env_usize("HOPPER_BENCH_MACHINES", 2_000);
    let shard_counts = env_list("HOPPER_BENCH_SHARD_COUNTS", &[1, 2, 4]);
    let fault_modes = std::env::var("HOPPER_BENCH_FAULTS").unwrap_or_else(|_| "off,on".into());
    let fault_modes: Vec<bool> = fault_modes
        .split(',')
        .filter_map(|s| match s.trim() {
            "on" => Some(true),
            "off" => Some(false),
            _ => None,
        })
        .collect();
    let seed = 1;
    eprintln!(
        "fig_shard bench: {jobs} jobs, {machines} machines, shard counts {shard_counts:?}, \
         fault modes {fault_modes:?} (HOPPER_BENCH_JOBS / HOPPER_BENCH_MACHINES / \
         HOPPER_BENCH_SHARD_COUNTS / HOPPER_BENCH_FAULTS)"
    );
    let t = trace(seed, jobs, machines * 2);
    for &faults in &fault_modes {
        // Serial-driver context line (its own equivalence family).
        let serial = run_cell(&t, machines, faults, 0, seed);
        assert_eq!(serial.jobs_done, jobs, "serial run lost jobs");
        report("serial", faults, 0, jobs, machines, &serial);

        let mut reference: Option<Cell> = None;
        for &shards in &shard_counts {
            let cell = run_cell(&t, machines, faults, shards.max(1), seed);
            assert_eq!(cell.jobs_done, jobs, "sharded run lost jobs");
            if let Some(r) = &reference {
                // Large-scale partition-independence: same events, same
                // makespan, same mean, at every shard count.
                assert_eq!(r.events, cell.events, "event count drifted");
                assert_eq!(r.makespan, cell.makespan, "makespan drifted");
                assert_eq!(r.mean_ms.to_bits(), cell.mean_ms.to_bits(), "mean drifted");
            }
            report("sharded", faults, shards.max(1), jobs, machines, &cell);
            reference.get_or_insert(cell);
        }
    }
}
