//! Cluster-dynamics figure: mean JCT vs slow-node fraction, Hopper vs
//! Sparrow vs Sparrow-SRPT(+LATE), decentralized engine.
//!
//! Not a figure of the paper — the paper's testbed is homogeneous and its
//! stragglers are task-level draws. This target probes the thesis under
//! *machine-level* stragglers (the dominant production cause): a bimodal
//! cluster where a `slow_frac` fraction of machines runs at
//! `HOPPER_BENCH_SLOW_FACTOR` (default 0.3×) of nominal speed. The
//! speculation-unaware baseline degrades fastest; coordinated speculation
//! absorbs slow machines the same way it absorbs slow tasks.
//!
//! ```sh
//! cargo bench --bench fig_hetero
//! ```

use hopper_bench::{banner, decentral_spec, seed_list};
use hopper_experiment::{sweep, SweepAxis};
use hopper_metrics::Table;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    banner(
        "Cluster dynamics",
        "mean JCT vs slow-node fraction (bimodal heterogeneity)",
    );
    let slow_factor = env_f64("HOPPER_BENCH_SLOW_FACTOR", 0.3);
    let fracs = ["0.0", "0.1", "0.2", "0.3"];
    let axis = SweepAxis {
        key: "slow_frac".into(),
        values: fracs.iter().map(|f| f.to_string()).collect(),
    };
    let mut table = Table::new(
        &format!("slow machines run at {slow_factor}x nominal"),
        &["policy", "slow_frac=0", "0.1", "0.2", "0.3", "blowup"],
    );
    for policy in ["sparrow", "sparrow-srpt", "hopper"] {
        let mut spec = decentral_spec(policy, "facebook", 0.7);
        spec.single_phase = true;
        spec.hetero = "bimodal".into();
        spec.slow_factor = slow_factor;
        spec.seeds = seed_list();
        let table_out = sweep(&spec, &axis).expect("sweep");
        let means: Vec<f64> = fracs.iter().map(|f| table_out.mean_for(f)).collect();
        table.row(&[
            policy.to_string(),
            format!("{:.0}", means[0]),
            format!("{:.0}", means[1]),
            format!("{:.0}", means[2]),
            format!("{:.0}", means[3]),
            format!("{:.2}x", means[3] / means[0]),
        ]);
    }
    table.print();
    println!(
        "(expect: every policy degrades as slow_frac grows; speculation-unaware Sparrow blows \
         up fastest while Hopper keeps the best absolute JCT — coordinated speculation absorbs \
         machine-level stragglers)"
    );
}
