//! Message-fault figure: mean JCT and recovery-machinery counters vs
//! RPC loss rate, Hopper vs Sparrow, decentralized engine.
//!
//! Not a figure of the paper — its testbed network is reliable. This
//! target probes the robustness claim behind §5's decentralized design:
//! the probe/assign protocol, hardened with dedup stamps, leases, and
//! watchdog re-probing, should degrade gracefully as messages are lost
//! (with jitter and duplication riding along at fixed rates), not fall
//! over. The counters make the recovery machinery visible: how many
//! messages the storm destroyed, how many watchdog rounds and fresh
//! probe waves answered, and how many orphaned slots the leases
//! reclaimed.
//!
//! ```sh
//! cargo bench --bench fig_faults
//! ```

use hopper_bench::{banner, decentral_cluster, jobs, seed_list};
use hopper_decentral::{self as decentral, DecConfig, DecPolicy, FaultConfig};
use hopper_metrics::Table;
use hopper_workload::{Trace, TraceGenerator, WorkloadProfile};

const LOSS_RATES: [f64; 4] = [0.0, 0.01, 0.02, 0.05];

fn trace(seed: u64, total_slots: usize) -> Trace {
    let profile = WorkloadProfile::facebook().interactive().single_phase();
    TraceGenerator::new(profile, jobs(), seed).generate_with_utilization(total_slots, 0.7)
}

fn storm(msg_loss: f64) -> FaultConfig {
    FaultConfig {
        msg_loss,
        // Jitter and duplication ride along at fixed rates so the loss
        // axis is swept through a realistically messy network, except at
        // the loss=0 reference point, which stays the pristine
        // (golden-identical) run.
        msg_jitter_ms: if msg_loss > 0.0 { 5 } else { 0 },
        msg_dup: if msg_loss > 0.0 { 0.02 } else { 0.0 },
        ..FaultConfig::off()
    }
}

fn main() {
    banner(
        "Message faults",
        "mean JCT + recovery counters vs RPC loss rate",
    );
    let mut table = Table::new(
        "loss axis, +5ms jitter +2% duplication when loss > 0",
        &[
            "policy", "msg_loss", "mean JCT", "blowup", "lost", "dup", "retried", "timeouts",
            "orphans",
        ],
    );
    for policy in [DecPolicy::Sparrow, DecPolicy::Hopper] {
        let mut base_jct = 0.0;
        for loss in LOSS_RATES {
            let (mut jct, mut n) = (0.0, 0usize);
            let mut lost = 0u64;
            let mut dup = 0u64;
            let mut retried = 0u64;
            let mut timeouts = 0u64;
            let mut orphans = 0u64;
            for seed in seed_list() {
                let cluster = decentral_cluster();
                let t = trace(seed, cluster.machines * cluster.slots_per_machine);
                let cfg = DecConfig {
                    cluster,
                    num_schedulers: 10,
                    seed,
                    faults: storm(loss),
                    ..Default::default()
                };
                let out = decentral::run(&t, policy, &cfg);
                assert_eq!(out.jobs.len(), t.len(), "a storm run lost a job");
                jct += out.jobs.iter().map(|j| j.duration_ms() as f64).sum::<f64>();
                n += out.jobs.len();
                lost += out.stats.msgs_lost;
                dup += out.stats.msgs_duplicated;
                retried += out.stats.msgs_retried;
                timeouts += out.stats.timeouts_fired;
                orphans += out.stats.orphan_reclaimed;
            }
            let mean = jct / n as f64;
            if loss == 0.0 {
                base_jct = mean;
            }
            table.row(&[
                policy.name().to_string(),
                format!("{loss}"),
                format!("{mean:.0}"),
                format!("{:.2}x", mean / base_jct),
                lost.to_string(),
                dup.to_string(),
                retried.to_string(),
                timeouts.to_string(),
                orphans.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "(expect: JCT grows smoothly with loss — every job completes at every rate; the retry \
         and orphan columns show the watchdog/lease machinery doing the recovering, and \
         loss=0 rows match the fault-free goldens bit-for-bit)"
    );
}
