//! Criterion micro-benchmarks: the hot paths of the scheduler itself
//! (not part of the paper's evaluation — engineering health checks).
//!
//! - `allocate`: Pseudocode 1 over n jobs (the per-event cost of the
//!   centralized scheduler);
//! - `event_queue`: push+pop throughput of the simulation engine;
//! - `episode_decision`: the worker-side protocol pick over a deep queue;
//! - `pareto_sample`: the straggler-model duration draw.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hopper_core::{allocate, AllocConfig, FreeSlotEpisode, JobDemand, Reservation};
use hopper_sim::{rng_from_seed, EventQueue, SimTime};
use hopper_workload::Dist;
use std::hint::black_box;

fn bench_allocate(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocate");
    for n in [10usize, 100, 1000] {
        let demands: Vec<JobDemand> = (0..n)
            .map(|i| JobDemand::simple(i, ((i * 37) % 500 + 1) as f64, 1.5))
            .collect();
        let cfg = AllocConfig::default();
        g.bench_with_input(BenchmarkId::from_parameter(n), &demands, |b, d| {
            b.iter(|| allocate(black_box(d), black_box(n * 40), &cfg));
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_millis((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        });
    });
}

fn bench_episode_decision(c: &mut Criterion) {
    let queue: Vec<Reservation> = (0..100)
        .map(|i| Reservation {
            scheduler: i % 10,
            job: i as u64,
            virtual_size: ((i * 31) % 200) as f64 + 1.0,
            remaining_tasks: ((i * 17) % 150) as f64 + 1.0,
        })
        .collect();
    c.bench_function("worker_episode_pick_100deep", |b| {
        let mut rng = rng_from_seed(1);
        b.iter(|| {
            let mut ep = FreeSlotEpisode::new(2);
            black_box(ep.next_action(black_box(&queue), &mut rng))
        });
    });
}

fn bench_pareto_sample(c: &mut Criterion) {
    let d = Dist::unit_mean_pareto(1.5);
    c.bench_function("pareto_sample", |b| {
        let mut rng = rng_from_seed(7);
        b.iter(|| black_box(d.sample(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_allocate,
    bench_event_queue,
    bench_episode_decision,
    bench_pareto_sample
);
criterion_main!(benches);
