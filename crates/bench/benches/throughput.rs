//! Simulator throughput at production scale (`cargo bench --bench throughput`).
//!
//! Unlike the `fig*` / `table1` targets this does not reproduce a paper
//! figure; it tracks the raw events/sec of both drivers on a large scenario
//! (default: 10 000 jobs on a 2 000-machine cluster) so that performance
//! regressions are caught by trajectory, not anecdote. Each run prints one
//! machine-parseable JSON line to stdout — append them to `BENCH_*.json`.
//!
//! Sizing knobs (smoke mode in CI uses `HOPPER_BENCH_JOBS=30
//! HOPPER_BENCH_SEEDS=1`):
//!
//! - `HOPPER_BENCH_JOBS`     — jobs per trace (default 10 000 here; the
//!   figure benches default to 150)
//! - `HOPPER_BENCH_MACHINES` — cluster size (default 2 000)
//! - `HOPPER_BENCH_SEEDS`    — repetitions (default 1)

use std::time::Instant;

use hopper_central::{self as central, Policy, SimConfig};
use hopper_cluster::ClusterConfig;
use hopper_decentral::{self as decentral, DecConfig, DecPolicy};
use hopper_sim::SimTime;
use hopper_workload::{Trace, TraceGenerator, WorkloadProfile};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Interactive single-phase Facebook-style workload: the shape the paper's
/// scale simulations use, and the one that stresses per-event dispatch
/// rather than straggler modelling.
fn trace(seed: u64, jobs: usize, total_slots: usize) -> Trace {
    let profile = WorkloadProfile::facebook().interactive().single_phase();
    TraceGenerator::new(profile, jobs, seed).generate_with_utilization(total_slots, 0.7)
}

#[allow(clippy::too_many_arguments)]
fn report(
    driver: &str,
    policy: &str,
    jobs: usize,
    tasks: usize,
    machines: usize,
    total_slots: usize,
    seed: u64,
    events: u64,
    wall_ms: f64,
    mean_duration_ms: f64,
    makespan: SimTime,
) {
    let eps = if wall_ms > 0.0 {
        events as f64 / (wall_ms / 1000.0)
    } else {
        f64::INFINITY
    };
    println!(
        "{{\"bench\":\"throughput\",\"driver\":\"{driver}\",\"policy\":\"{policy}\",\
         \"jobs\":{jobs},\"tasks\":{tasks},\"machines\":{machines},\
         \"total_slots\":{total_slots},\"seed\":{seed},\"events\":{events},\
         \"wall_ms\":{wall_ms:.1},\"events_per_sec\":{eps:.0},\
         \"mean_job_duration_ms\":{mean_duration_ms:.1},\"makespan_ms\":{}}}",
        makespan.as_millis()
    );
}

/// Allocator-churn counters of a central Hopper run, as a JSON line
/// (all-zero for policies that never touch the incremental allocator).
fn report_counters(policy: &str, c: hopper_core::AllocCounters) {
    println!(
        "{{\"bench\":\"throughput\",\"detail\":\"alloc_counters\",\"policy\":\"{policy}\",\
         \"recomputes\":{},\"suffix_fills\":{},\"reuses\":{},\"stale_skips\":{}}}",
        c.recomputes, c.suffix_fills, c.reuses, c.stale_skips
    );
}

fn bench_central(policy: &Policy, jobs: usize, machines: usize, seed: u64) {
    let cluster = ClusterConfig {
        machines,
        slots_per_machine: 4,
        ..Default::default()
    };
    let total_slots = cluster.total_slots();
    let t = trace(seed, jobs, total_slots);
    let tasks: usize = t.jobs.iter().map(|j| j.num_tasks()).sum();
    let cfg = SimConfig {
        cluster,
        scan_interval: SimTime::from_millis(1000),
        seed,
        ..Default::default()
    };
    let start = Instant::now();
    let out = central::run(&t, policy, &cfg);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    report(
        "central",
        policy.name(),
        jobs,
        tasks,
        machines,
        total_slots,
        seed,
        out.stats.events,
        wall_ms,
        out.mean_duration_ms(),
        out.stats.makespan,
    );
    if matches!(policy, Policy::Hopper(_)) {
        report_counters(policy.name(), out.alloc_counters);
    }
}

/// Sharded-engine counters of a decentralized run, as a JSON line
/// (printed only when `HOPPER_BENCH_SHARDS >= 1` selected the
/// conservative-PDES engine). Observability, not goldens: the window
/// count is partition-independent but the stall count and the
/// cross/local split legitimately vary with the shard count.
fn report_shard_stats(policy: &str, s: &decentral::ShardStats) {
    println!(
        "{{\"bench\":\"throughput\",\"detail\":\"shard_stats\",\"policy\":\"{policy}\",\
         \"shards\":{},\"windows\":{},\"horizon_stalls\":{},\"cross_msgs\":{},\
         \"local_msgs\":{}}}",
        s.shards, s.windows, s.horizon_stalls, s.cross_msgs, s.local_msgs
    );
}

fn bench_decentral(policy: DecPolicy, jobs: usize, machines: usize, seed: u64, shards: usize) {
    let cluster = ClusterConfig {
        machines,
        slots_per_machine: 2,
        handoff_ms: 0,
        ..Default::default()
    };
    let total_slots = cluster.total_slots();
    let t = trace(seed, jobs, total_slots);
    let tasks: usize = t.jobs.iter().map(|j| j.num_tasks()).sum();
    let cfg = DecConfig {
        cluster,
        num_schedulers: 20,
        scan_interval: SimTime::from_millis(1000),
        seed,
        shards,
        ..Default::default()
    };
    let start = Instant::now();
    let out = decentral::run(&t, policy, &cfg);
    let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
    report(
        "decentral",
        policy.name(),
        jobs,
        tasks,
        machines,
        total_slots,
        seed,
        out.stats.events,
        wall_ms,
        out.mean_duration_ms(),
        out.stats.makespan,
    );
    if let Some(s) = &out.shard {
        report_shard_stats(policy.name(), s);
    }
}

fn main() {
    let jobs = env_usize("HOPPER_BENCH_JOBS", 10_000);
    let machines = env_usize("HOPPER_BENCH_MACHINES", 2_000);
    let seeds = env_usize("HOPPER_BENCH_SEEDS", 1) as u64;
    // Comma-separated driver filter ("central", "decentral"); both by
    // default. Lets CI smoke or baseline comparisons run one driver.
    let drivers =
        std::env::var("HOPPER_BENCH_DRIVERS").unwrap_or_else(|_| "central,decentral".into());
    let enabled: Vec<&str> = drivers.split(',').map(str::trim).collect();
    // Bounded-staleness knob for the central Hopper run (0 = exact).
    let drift = env_f64("HOPPER_BENCH_DRIFT", 0.0);
    // Sharded-engine selector for the decentral run (0 = serial driver).
    let shards = env_usize("HOPPER_BENCH_SHARDS", 0);
    eprintln!(
        "throughput bench: {jobs} jobs, {machines} machines, {seeds} seed(s), drivers {enabled:?}, \
         realloc_drift {drift}, shards {shards} (HOPPER_BENCH_JOBS / HOPPER_BENCH_MACHINES / \
         HOPPER_BENCH_SEEDS / HOPPER_BENCH_DRIVERS / HOPPER_BENCH_DRIFT / HOPPER_BENCH_SHARDS)"
    );
    for seed in 1..=seeds {
        if enabled.contains(&"central") {
            bench_central(&Policy::Srpt, jobs, machines, seed);
            bench_central(
                &Policy::Hopper(central::HopperConfig {
                    realloc_drift: drift,
                    ..Default::default()
                }),
                jobs,
                machines,
                seed,
            );
        }
        if enabled.contains(&"decentral") {
            bench_decentral(DecPolicy::Hopper, jobs, machines, seed, shards);
        }
    }
}
