//! **Figure 13** — the locality allowance `k` (§4.4): gains and the
//! fraction of data-local input tasks as `k` sweeps.
//!
//! The paper: a small k (≈3%) buys an appreciable locality increase;
//! gains hold for a while and drop past k ≈ 7% as the deviation from the
//! virtual-size order outweighs locality.

use hopper_central::{run, HopperConfig, Policy};
use hopper_metrics::{reduction_pct, Table};
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn main() {
    hopper_bench::banner(
        "Figure 13",
        "locality allowance k: gains and local fraction",
    );
    let seeds = hopper_bench::seeds();

    for (name, interactive) in [("Spark-style", true), ("Hadoop-style", false)] {
        let mut table = Table::new(
            &format!("{name} profile, 80% utilization"),
            &["k", "reduction vs SRPT", "% data-local tasks"],
        );
        for k in [0.0, 1.0, 3.0, 5.0, 7.0, 10.0, 15.0, 20.0] {
            let mut base = 0.0;
            let mut hop = 0.0;
            let mut local = 0.0;
            for seed in 0..seeds {
                let cfg = hopper_bench::central_cfg(seed, interactive);
                let slots = cfg.cluster.total_slots();
                let profile = if interactive {
                    WorkloadProfile::facebook().interactive().single_phase()
                } else {
                    WorkloadProfile::facebook().single_phase()
                };
                let trace = TraceGenerator::new(profile, hopper_bench::jobs(), seed)
                    .generate_with_utilization(slots, 0.8);
                base += run(&trace, &Policy::Srpt, &cfg).mean_duration_ms();
                let out = run(
                    &trace,
                    &Policy::Hopper(HopperConfig {
                        locality_relax_pct: k,
                        learn_beta: false,
                        ..Default::default()
                    }),
                    &cfg,
                );
                hop += out.mean_duration_ms();
                local += out.stats.locality_fraction.unwrap_or(0.0);
            }
            table.row(&[
                format!("{k:.0}%"),
                format!("{:.1}%", reduction_pct(base, hop)),
                format!("{:.1}%", local / seeds as f64 * 100.0),
            ]);
        }
        table.print();
    }
}
