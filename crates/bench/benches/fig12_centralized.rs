//! **Figure 12** — centralized Hopper vs centralized SRPT (+LATE), on
//! Hadoop-style (batch, disk-fed) and Spark-style (interactive,
//! in-memory) workload profiles: overall, by job-size bin, and by DAG
//! length.
//!
//! The paper: ~50% overall, with Spark modestly higher than Hadoop
//! (short tasks are more sensitive to stragglers and to speculative-copy
//! placement). See EXPERIMENTS.md for where this reproduction lands —
//! our idealized zero-latency SRPT baseline narrows the gap.

use hopper_central::{run, HopperConfig, Policy};
use hopper_metrics::{mean_duration_for_dag, mean_duration_in_bin, reduction_pct, SizeBin, Table};
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn main() {
    hopper_bench::banner(
        "Figure 12",
        "centralized Hopper vs SRPT: bins and DAG lengths",
    );
    let seeds = hopper_bench::seeds();

    for (name, interactive) in [("Hadoop-style", false), ("Spark-style", true)] {
        let mut overall = (0.0, 0.0);
        let mut bins = [(0.0, 0.0); 4];
        for seed in 0..seeds {
            let cfg = hopper_bench::central_cfg(seed, interactive);
            let slots = cfg.cluster.total_slots();
            let profile = if interactive {
                WorkloadProfile::facebook().interactive().single_phase()
            } else {
                WorkloadProfile::facebook().single_phase()
            };
            let trace = TraceGenerator::new(profile, hopper_bench::jobs(), seed)
                .generate_with_utilization(slots, 0.8);
            let base = run(&trace, &Policy::Srpt, &cfg);
            let hop = run(
                &trace,
                &Policy::Hopper(HopperConfig {
                    learn_beta: false,
                    ..Default::default()
                }),
                &cfg,
            );
            overall.0 += base.mean_duration_ms();
            overall.1 += hop.mean_duration_ms();
            for (i, bin) in SizeBin::all().into_iter().enumerate() {
                if let (Some(b), Some(h)) = (
                    mean_duration_in_bin(&base.jobs, bin),
                    mean_duration_in_bin(&hop.jobs, bin),
                ) {
                    bins[i].0 += b;
                    bins[i].1 += h;
                }
            }
        }
        let mut table = Table::new(
            &format!("(a) {name} profile, 80% utilization, single-phase jobs"),
            &["job bin", "reduction vs SRPT"],
        );
        table.row(&[
            "Overall".into(),
            format!("{:.1}%", reduction_pct(overall.0, overall.1)),
        ]);
        for (i, bin) in SizeBin::all().into_iter().enumerate() {
            let cell = if bins[i].0 == 0.0 {
                "n/a".to_string()
            } else {
                format!("{:.1}%", reduction_pct(bins[i].0, bins[i].1))
            };
            table.row(&[bin.label().into(), cell]);
        }
        table.print();
    }

    // (b) by DAG length, Spark-style profile.
    let mut tb = Table::new(
        "(b) gains by DAG length (Spark-style, 70% util)",
        &["phases", "reduction vs SRPT"],
    );
    for len in 2..=8usize {
        let (mut b, mut h) = (0.0, 0.0);
        for seed in 0..seeds {
            let cfg = hopper_bench::central_cfg(seed, true);
            let slots = cfg.cluster.total_slots();
            let profile = WorkloadProfile::facebook().interactive().fixed_dag_len(len);
            let trace = TraceGenerator::new(profile, hopper_bench::jobs() / 2, seed)
                .generate_with_utilization(slots, 0.7);
            b += mean_duration_for_dag(&run(&trace, &Policy::Srpt, &cfg).jobs, len).unwrap_or(0.0);
            h += mean_duration_for_dag(
                &run(
                    &trace,
                    &Policy::Hopper(HopperConfig {
                        learn_beta: false,
                        ..Default::default()
                    }),
                    &cfg,
                )
                .jobs,
                len,
            )
            .unwrap_or(0.0);
        }
        tb.row(&[len.to_string(), format!("{:.1}%", reduction_pct(b, h))]);
    }
    tb.print();
}
