//! **Figure 12** — centralized Hopper vs centralized SRPT (+LATE), on
//! Hadoop-style (batch, disk-fed) and Spark-style (interactive,
//! in-memory) workload profiles: overall, by job-size bin, and by DAG
//! length.
//!
//! The paper: ~50% overall, with Spark modestly higher than Hadoop
//! (short tasks are more sensitive to stragglers and to speculative-copy
//! placement). See EXPERIMENTS.md for where this reproduction lands —
//! our idealized zero-latency SRPT baseline narrows the gap. Each
//! policy's seed repetitions run in parallel via `run_seeds`.

use hopper_experiment::{run_seeds, ExperimentSpec, Trial};
use hopper_metrics::{mean_duration_for_dag, mean_duration_in_bin, reduction_pct, SizeBin, Table};

fn seed_sum(trials: &[Trial], f: impl Fn(&Trial) -> Option<f64>) -> f64 {
    trials.iter().filter_map(&f).sum()
}

fn run(spec: &ExperimentSpec) -> Vec<Trial> {
    run_seeds(spec).expect("fig12 trials")
}

fn main() {
    hopper_bench::banner(
        "Figure 12",
        "centralized Hopper vs SRPT: bins and DAG lengths",
    );

    for (name, interactive) in [("Hadoop-style", false), ("Spark-style", true)] {
        let mk = |policy: &str| {
            let mut s = hopper_bench::central_spec(policy, interactive, 0.8);
            s.single_phase = true;
            s
        };
        let base = run(&mk("srpt"));
        let hop = run(&mk("hopper"));

        let overall = (
            seed_sum(&base, |t| Some(t.mean_duration_ms())),
            seed_sum(&hop, |t| Some(t.mean_duration_ms())),
        );
        let mut table = Table::new(
            &format!("(a) {name} profile, 80% utilization, single-phase jobs"),
            &["job bin", "reduction vs SRPT"],
        );
        table.row(&[
            "Overall".into(),
            format!("{:.1}%", reduction_pct(overall.0, overall.1)),
        ]);
        for bin in SizeBin::all() {
            // Sum a bin's mean across seeds only where both runs have
            // jobs in the bin (the original pairwise accumulation).
            let (mut b, mut h) = (0.0, 0.0);
            for (tb, th) in base.iter().zip(&hop) {
                if let (Some(x), Some(y)) = (
                    mean_duration_in_bin(&tb.jobs, bin),
                    mean_duration_in_bin(&th.jobs, bin),
                ) {
                    b += x;
                    h += y;
                }
            }
            let cell = if b == 0.0 {
                "n/a".to_string()
            } else {
                format!("{:.1}%", reduction_pct(b, h))
            };
            table.row(&[bin.label().into(), cell]);
        }
        table.print();
    }

    // (b) by DAG length, Spark-style profile.
    let mut tb = Table::new(
        "(b) gains by DAG length (Spark-style, 70% util)",
        &["phases", "reduction vs SRPT"],
    );
    for len in 2..=8usize {
        let mk = |policy: &str| {
            let mut s = hopper_bench::central_spec(policy, true, 0.7);
            s.fixed_dag_len = Some(len);
            s.jobs = hopper_bench::jobs() / 2;
            s
        };
        let b = seed_sum(&run(&mk("srpt")), |t| mean_duration_for_dag(&t.jobs, len));
        let h = seed_sum(&run(&mk("hopper")), |t| mean_duration_for_dag(&t.jobs, len));
        tb.row(&[len.to_string(), format!("{:.1}%", reduction_pct(b, h))]);
    }
    tb.print();
}
