//! **Figure 11** — decentralized Hopper's gains vs the probe ratio, at
//! several utilizations.
//!
//! The paper: gains grow with the probe ratio up to ~4 (3.5 suffices at
//! 70–80%); at 90% utilization extra probes stop paying beyond ~2.5.

use hopper_decentral::{run, DecPolicy};
use hopper_metrics::{reduction_pct, Table};

fn main() {
    hopper_bench::banner("Figure 11", "gain over Sparrow-SRPT vs probe ratio");
    let seeds = hopper_bench::seeds();

    let mut table = Table::new(
        "reduction (%) in average JCT vs Sparrow-SRPT (probe ratio 2)",
        &[
            "probe ratio",
            "util 60%",
            "util 70%",
            "util 80%",
            "util 90%",
        ],
    );
    for ratio in [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0] {
        let mut cells = vec![format!("{ratio:.1}")];
        for util in [0.6, 0.7, 0.8, 0.9] {
            let mut base = 0.0;
            let mut hop = 0.0;
            for seed in 0..seeds {
                let mut cfg = hopper_bench::decentral_cfg(seed);
                let slots = cfg.cluster.total_slots();
                let trace = hopper_bench::fb_interactive_trace(seed, util, slots);
                cfg.probe_ratio = 2.0;
                base += run(&trace, DecPolicy::SparrowSrpt, &cfg).mean_duration_ms();
                cfg.probe_ratio = ratio;
                hop += run(&trace, DecPolicy::Hopper, &cfg).mean_duration_ms();
            }
            cells.push(format!("{:.1}%", reduction_pct(base, hop)));
        }
        table.row(&cells);
    }
    table.print();
}
