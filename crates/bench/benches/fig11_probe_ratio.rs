//! **Figure 11** — decentralized Hopper's gains vs the probe ratio, at
//! several utilizations.
//!
//! The paper: gains grow with the probe ratio up to ~4 (3.5 suffices at
//! 70–80%); at 90% utilization extra probes stop paying beyond ~2.5.
//! Per utilization: the Sparrow-SRPT baseline (probe ratio 2) runs its
//! seeds in parallel, then one `sweep` covers the probe-ratio axis.

use hopper_experiment::{mean_jct, run_seeds, sweep, SweepAxis};
use hopper_metrics::{reduction_pct, Table};

fn main() {
    hopper_bench::banner("Figure 11", "gain over Sparrow-SRPT vs probe ratio");
    let utils = [0.6, 0.7, 0.8, 0.9];
    let ratios = [2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0];
    let axis = SweepAxis::new("probe_ratio", &ratios);

    // Per utilization: baseline mean and the swept Hopper table.
    let mut baselines = Vec::new();
    let mut hoppers = Vec::new();
    for &util in &utils {
        let mut base = hopper_bench::decentral_spec("sparrow-srpt", "facebook", util);
        base.probe_ratio = 2.0;
        let trials = run_seeds(&base).expect("fig11 baseline");
        baselines.push(mean_jct(&trials));
        let hopper = hopper_bench::decentral_spec("hopper", "facebook", util);
        hoppers.push(sweep(&hopper, &axis).expect("fig11 sweep"));
    }

    let mut table = Table::new(
        "reduction (%) in average JCT vs Sparrow-SRPT (probe ratio 2)",
        &[
            "probe ratio",
            "util 60%",
            "util 70%",
            "util 80%",
            "util 90%",
        ],
    );
    for ratio in ratios {
        let v = ratio.to_string();
        let mut cells = vec![format!("{ratio:.1}")];
        for (i, _) in utils.iter().enumerate() {
            cells.push(format!(
                "{:.1}%",
                reduction_pct(baselines[i], hoppers[i].mean_for(&v))
            ));
        }
        table.row(&cells);
    }
    table.print();
}
