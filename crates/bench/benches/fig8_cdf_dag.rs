//! **Figure 8** — (a) the CDF of per-job gains at 60% utilization and
//! (b) gains as the job's DAG length varies.
//!
//! The paper: median gains just above the average, >70% at high
//! percentiles, and 10–15% even at the 10th percentile; gains hold
//! across DAG lengths.

use hopper_decentral::{run, DecPolicy};
use hopper_metrics::{mean_duration_for_dag, reduction_pct, GainCdf, Table};
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn main() {
    hopper_bench::banner("Figure 8", "gain CDF and gains by DAG length, 60% util");
    let seeds = hopper_bench::seeds();

    // (a) CDF of per-job gains.
    let mut gains: Vec<f64> = Vec::new();
    for seed in 0..seeds {
        let cfg = hopper_bench::decentral_cfg(seed);
        let slots = cfg.cluster.total_slots();
        let trace = hopper_bench::fb_interactive_trace(seed, 0.6, slots);
        let base = run(&trace, DecPolicy::SparrowSrpt, &cfg);
        let hop = run(&trace, DecPolicy::Hopper, &cfg);
        gains.extend(GainCdf::between(&base.jobs, &hop.jobs).gains);
    }
    gains.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let cdf = GainCdf { gains };
    let mut ta = Table::new(
        "(a) CDF of per-job gains vs Sparrow-SRPT",
        &["percentile", "gain"],
    );
    for p in [0.10, 0.25, 0.50, 0.75, 0.90] {
        ta.row(&[
            format!("P{:.0}", p * 100.0),
            format!("{:.1}%", cdf.value_at(p)),
        ]);
    }
    ta.print();

    // (b) Gains by DAG length (force a mix of lengths 1..=6).
    let mut tb = Table::new("(b) gains by DAG length", &["phases", "reduction"]);
    for len in 1..=6usize {
        let (mut b, mut h) = (0.0, 0.0);
        let mut have = true;
        for seed in 0..seeds {
            let cfg = hopper_bench::decentral_cfg(seed);
            let slots = cfg.cluster.total_slots();
            let profile = WorkloadProfile::facebook().interactive().fixed_dag_len(len);
            let trace = TraceGenerator::new(profile, hopper_bench::jobs() / 2, seed)
                .generate_with_utilization(slots, 0.6);
            let base = run(&trace, DecPolicy::SparrowSrpt, &cfg);
            let hop = run(&trace, DecPolicy::Hopper, &cfg);
            match (
                mean_duration_for_dag(&base.jobs, len),
                mean_duration_for_dag(&hop.jobs, len),
            ) {
                (Some(x), Some(y)) => {
                    b += x;
                    h += y;
                }
                _ => have = false,
            }
        }
        tb.row(&[
            len.to_string(),
            if have {
                format!("{:.1}%", reduction_pct(b, h))
            } else {
                "n/a".into()
            },
        ]);
    }
    tb.print();
}
