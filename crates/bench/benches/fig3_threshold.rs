//! **Figure 3** — the sharp threshold (knee) in the marginal value of
//! slots for a single job.
//!
//! One job with 200 Pareto tasks under LATE speculation, allocated a
//! varying number of slots (x-axis normalized by job size). The paper
//! observes a knee at `max(2/β, 1)`: 1.43 for β = 1.4 and 1.25 for
//! β = 1.6. See EXPERIMENTS.md for the measured knee position in this
//! reproduction (the reactive-speculation model places it earlier).

use hopper_central::{run, HopperConfig, Policy, SimConfig};
use hopper_cluster::ClusterConfig;
use hopper_metrics::Table;
use hopper_sim::SimTime;
use hopper_spec::{SpecConfig, Speculator};
use hopper_workload::{single_phase_job, Trace};

fn main() {
    hopper_bench::banner("Figure 3", "single-job completion time vs normalized slots");
    let reps = (hopper_bench::seeds() * 10).max(10);
    let tasks = 200usize;
    let work_ms = 10_000u64;

    for beta in [1.4f64, 1.6] {
        let mut table = Table::new(
            &format!("β = {beta} (paper's knee at 2/β = {:.2})", 2.0 / beta),
            &["slots/size", "completion (×nominal)", "slope marker"],
        );
        let mut last: Option<f64> = None;
        for frac in [0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.25, 1.43, 1.6, 2.0, 2.5] {
            let slots = (tasks as f64 * frac).round() as usize;
            let mut mean = 0.0;
            for seed in 0..reps {
                let trace = Trace::new(vec![single_phase_job(
                    0,
                    SimTime::ZERO,
                    vec![SimTime::from_millis(work_ms); tasks],
                    beta,
                )]);
                let cfg = SimConfig {
                    cluster: ClusterConfig {
                        machines: slots,
                        slots_per_machine: 1,
                        dfs_replicas: 0,
                        handoff_ms: 0,
                        ..Default::default()
                    },
                    speculator: Speculator::Late(SpecConfig {
                        min_elapsed: SimTime::from_millis(500),
                        spec_cap_fraction: 0.6,
                        ..Default::default()
                    }),
                    scan_interval: SimTime::from_millis(500),
                    seed,
                    ..Default::default()
                };
                mean += run(&trace, &Policy::Hopper(HopperConfig::pure()), &cfg).mean_duration_ms();
            }
            let norm = mean / reps as f64 / work_ms as f64;
            let marker = match last {
                Some(prev) if prev - norm > 0.02 => "v improving",
                Some(_) => "- flat",
                None => "",
            };
            table.row(&[
                format!("{frac:.2}"),
                format!("{norm:.3}"),
                marker.to_string(),
            ]);
            last = Some(norm);
        }
        table.print();
    }
}
