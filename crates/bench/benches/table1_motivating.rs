//! **Table 1 + Figures 1a/1b/2** — the §3 motivating example.
//!
//! Two jobs (A: 4 tasks, B: 5 tasks) on a 7-slot cluster with the
//! scripted durations of Table 1 and the simple `t_rem > t_new` rule
//! detected after 2 s. The paper's numbers: best-effort SRPT finishes
//! A/B at 20/30 s (Fig. 1a), budgeted speculation at 12/32 s (Fig. 1b),
//! Hopper at 12/22 s (Fig. 2).

use hopper_central::scenario::{motivating_sim_config, motivating_trace};
use hopper_central::{run, HopperConfig, Policy};
use hopper_metrics::Table;

fn main() {
    hopper_bench::banner(
        "Table 1 / Figures 1-2",
        "motivating example, scripted durations",
    );

    let (trace, scripted) = motivating_trace();
    let cfg = motivating_sim_config();

    let mut t1 = Table::new(
        "Table 1: task durations (seconds)",
        &["job", "task", "t_orig", "t_new"],
    );
    for (j, tasks) in scripted.iter().enumerate() {
        let name = if j == 0 { "A" } else { "B" };
        for (i, &(orig, new)) in tasks.iter().enumerate() {
            t1.row(&[
                name.to_string(),
                format!("{name}{}", i + 1),
                format!("{}", orig / 1000),
                format!("{}", new / 1000),
            ]);
        }
    }
    t1.print();

    let mut t2 = Table::new(
        "completion times (seconds) — paper: A/B = 20/30, 12/32, 12/22",
        &["strategy", "job A", "job B", "average"],
    );
    let cases: Vec<(&str, Policy)> = vec![
        ("best-effort (SRPT+spec)", Policy::Srpt),
        (
            "budgeted (3 reserved)",
            Policy::BudgetedSrpt {
                budget_fraction: 3.0 / 7.0,
            },
        ),
        ("Hopper (coordinated)", Policy::Hopper(HopperConfig::pure())),
    ];
    for (name, policy) in cases {
        let out = run(&trace, &policy, &cfg);
        let a = out.jobs.iter().find(|r| r.job == 0).unwrap().duration_ms() as f64 / 1000.0;
        let b = out.jobs.iter().find(|r| r.job == 1).unwrap().duration_ms() as f64 / 1000.0;
        t2.row(&[
            name.to_string(),
            format!("{a:.0}"),
            format!("{b:.0}"),
            format!("{:.1}", (a + b) / 2.0),
        ]);
    }
    t2.print();
}
