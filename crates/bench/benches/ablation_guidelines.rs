//! **Ablation** (beyond the paper's figures) — which pieces of Hopper's
//! design carry the gains?
//!
//! Compares the default centralized Hopper against variants with one
//! mechanism removed: no √α DAG weighting, no online β learning, no
//! online α learning, no locality relaxation — plus the §3 budgeted
//! strawman and the Fair baseline for calibration.

use hopper_central::{run, HopperConfig, Policy};
use hopper_metrics::{reduction_pct, Table};
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn main() {
    hopper_bench::banner("Ablation", "centralized Hopper variants vs SRPT, 80% util");
    let seeds = hopper_bench::seeds();

    let variants: Vec<(&str, Policy)> = vec![
        ("Fair", Policy::Fair),
        (
            "Budgeted-SRPT 20%",
            Policy::BudgetedSrpt {
                budget_fraction: 0.2,
            },
        ),
        ("Hopper (default)", Policy::Hopper(HopperConfig::default())),
        (
            "Hopper w/o alpha",
            Policy::Hopper(HopperConfig {
                use_alpha: false,
                ..Default::default()
            }),
        ),
        (
            "Hopper w/o learned beta",
            Policy::Hopper(HopperConfig {
                learn_beta: false,
                ..Default::default()
            }),
        ),
        (
            "Hopper w/o learned alpha",
            Policy::Hopper(HopperConfig {
                learn_alpha: false,
                ..Default::default()
            }),
        ),
        (
            "Hopper w/o locality relax",
            Policy::Hopper(HopperConfig {
                locality_relax_pct: 0.0,
                ..Default::default()
            }),
        ),
    ];

    let mut table = Table::new(
        "reduction in mean JCT vs SRPT (positive = better than SRPT)",
        &["variant", "reduction", "spec launched", "spec won"],
    );
    for (name, policy) in variants {
        let mut base = 0.0;
        let mut var = 0.0;
        let mut launched = 0;
        let mut won = 0;
        for seed in 0..seeds {
            let cfg = hopper_bench::central_cfg(seed, false);
            let slots = cfg.cluster.total_slots();
            let profile = WorkloadProfile::facebook().single_phase();
            let trace = TraceGenerator::new(profile, hopper_bench::jobs(), seed)
                .generate_with_utilization(slots, 0.8);
            base += run(&trace, &Policy::Srpt, &cfg).mean_duration_ms();
            let out = run(&trace, &policy, &cfg);
            var += out.mean_duration_ms();
            launched += out.stats.spec_launched;
            won += out.stats.spec_won;
        }
        table.row(&[
            name.to_string(),
            format!("{:+.1}%", reduction_pct(base, var)),
            (launched / seeds).to_string(),
            (won / seeds).to_string(),
        ]);
    }
    table.print();
}
