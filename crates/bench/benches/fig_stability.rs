//! Stability-frontier figure (`cargo bench --bench fig_stability`).
//!
//! Not a paper figure: it maps each policy's *stability frontier* — the
//! maximum sustainable target utilization, found by bisection on the
//! unbounded-queue detector (`hopper_experiment::find_frontier`) — and
//! compares stationary (constant-rate) against diurnal arrivals at the
//! same time-average load. The paper's Figure 6 sweeps utilization up
//! to 90% and shows Hopper's gains growing with load; this bench asks
//! the complementary question: *where does each scheduler stop keeping
//! up, and does a non-stationary arrival pattern move that point?*
//!
//! Cells: {Hopper, Sparrow} on the decentralized deployment and SRPT on
//! the centralized one, × {constant, diurnal} rate profiles. Every cell
//! is one deterministic bisection (first seed only — the detector reads
//! one streaming run per probe), fanned across worker threads by
//! `frontier_grid`, so output is identical at every thread count.
//!
//! The probe workload is the *low-variance reference* (single phase,
//! fixed job size, fixed β) rather than the raw Facebook profile: under
//! a BoundedPareto(1.1) job-size tail a finite run's saturation
//! transition is smeared across ±20% of utilization (one elephant
//! dominates every gauge), so frontier deltas between policies would be
//! seed noise. With near-iid jobs the transition is sharp and the
//! detected frontier is a property of the *scheduler*, not of one
//! elephant draw. The diurnal period is shortened so each probe spans
//! several cycles (a single partial cycle would let the final trough
//! drain the backlog and mask saturation).
//!
//! Output: the `frontier_csv` table
//! (`policy,rate_profile,frontier_lo,frontier_hi,probes`). Sizing knobs:
//!
//! - `HOPPER_BENCH_JOBS`  — jobs per probe run (default 600: the
//!   live-jobs fraction signal needs enough jobs that a draining
//!   heavy-tailed run's elephants stay below it)
//! - `HOPPER_BENCH_ITERS` — bisection steps after the endpoint probes
//!   (default 7: brackets to ≈ 0.007 in utilization)

use hopper_bench::{central_spec, decentral_spec};
use hopper_experiment::{default_threads, frontier_csv, frontier_grid, FrontierConfig};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    println!(
        "\n=== fig_stability — stability frontiers: \
         max sustainable utilization per policy, stationary vs diurnal ==="
    );
    let cfg = FrontierConfig {
        iters: env_usize("HOPPER_BENCH_ITERS", FrontierConfig::default().iters),
        ..FrontierConfig::default()
    };

    // The probe utilization in these constructors is a placeholder —
    // bisection overwrites `util` on every probe. Probe runs need more
    // jobs than the figure benches' default 150 for the saturation
    // detector's fractions to be meaningful.
    let jobs = env_usize("HOPPER_BENCH_JOBS", 600);
    println!(
        "(jobs/probe: {jobs}, bisection steps: {}; override via \
         HOPPER_BENCH_JOBS / HOPPER_BENCH_ITERS)",
        cfg.iters
    );
    let reference = |s: &mut hopper_experiment::ExperimentSpec, profile: &str| {
        s.jobs = jobs;
        s.single_phase = true;
        s.fixed_tasks = Some(40);
        s.fixed_beta = Some(1.5);
        s.rate_profile = profile.to_string();
        s.rate_period_ms = 20_000;
    };
    let mut cells = Vec::new();
    for profile in ["constant", "diurnal"] {
        for policy in ["hopper", "sparrow"] {
            let mut s = decentral_spec(policy, "facebook", 0.8);
            reference(&mut s, profile);
            cells.push(s);
        }
        let mut s = central_spec("srpt", true, 0.8);
        reference(&mut s, profile);
        cells.push(s);
    }

    let results = frontier_grid(&cells, &cfg, default_threads())
        .expect("bench specs validate and probes run");
    println!("\n{}", frontier_csv(&results));
    println!(
        "(frontier in [lo, hi]; lo == hi at a bound means at/beyond it; \
         bisection bounds [{}, {}], {} steps)",
        cfg.lo, cfg.hi, cfg.iters
    );
}
