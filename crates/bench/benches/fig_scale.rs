//! Streaming-pipeline scale bench (`cargo bench --bench fig_scale`).
//!
//! Not a paper figure: the paper simulates tens of thousands of jobs,
//! while the ROADMAP's north star is sustained arrival streams from
//! millions of users. This target walks the decentralized engine up the
//! job-count axis **through the streaming pipeline** (lazy arrivals,
//! retired jobs, digest-only metrics) and reports, per size:
//!
//! - events/sec (throughput must not degrade with stream length),
//! - the live-job high-water mark (the O(active) memory invariant —
//!   a small, roughly size-independent count, so its *fraction* of
//!   total jobs shrinks as the stream grows),
//! - peak RSS (`VmHWM`, Linux; 0 elsewhere). Sizes run ascending and
//!   `VmHWM` is process-monotonic, so each reading is the peak up to
//!   and including that size.
//!
//! One machine-parseable JSON line per size, like `throughput`.
//!
//! Sizing knobs:
//!
//! - `HOPPER_BENCH_SCALE_JOBS` — comma-separated job counts
//!   (default `10000,100000,1000000`; CI smoke passes a small list)
//! - `HOPPER_BENCH_MACHINES`   — cluster size (default 2 000)

use std::time::Instant;

use hopper_decentral::{self as decentral, DecConfig, DecPolicy};
use hopper_sim::SimTime;
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn job_counts() -> Vec<usize> {
    std::env::var("HOPPER_BENCH_SCALE_JOBS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![10_000, 100_000, 1_000_000])
}

/// Peak resident set size in KiB (`VmHWM` from /proc; 0 off Linux).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn main() {
    let machines = env_usize("HOPPER_BENCH_MACHINES", 2_000);
    let sizes = job_counts();
    eprintln!(
        "fig_scale bench: decentral Hopper, streaming pipeline, {machines} machines, \
         sizes {sizes:?} (HOPPER_BENCH_SCALE_JOBS / HOPPER_BENCH_MACHINES)"
    );
    // The throughput bench's workload shape: interactive single-phase
    // Facebook jobs, the one that stresses per-event dispatch and the
    // arrival/retirement machinery rather than straggler modelling.
    let profile = WorkloadProfile::facebook().interactive().single_phase();
    let base_cfg = DecConfig {
        cluster: hopper_cluster::ClusterConfig {
            machines,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        num_schedulers: 20,
        scan_interval: SimTime::from_millis(1000),
        seed: 1,
        ..Default::default()
    };
    let total_slots = base_cfg.cluster.total_slots();
    for jobs in sizes {
        // The livelock valve defaults to a budget sized for ≤100k-job
        // runs; a million-job stream legitimately processes ~700M
        // events (~700 per job at this shape), so scale it with size.
        let cfg = DecConfig {
            max_events: (jobs as u64).saturating_mul(2_000).max(500_000_000),
            ..base_cfg.clone()
        };
        let stream =
            TraceGenerator::new(profile.clone(), jobs, 1).stream_with_utilization(total_slots, 0.7);
        let start = Instant::now();
        let out = decentral::run_stream(stream, DecPolicy::Hopper, &cfg);
        let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
        let eps = if wall_ms > 0.0 {
            out.stats.events as f64 / (wall_ms / 1000.0)
        } else {
            f64::INFINITY
        };
        let hw_pct = 100.0 * out.live_high_water as f64 / jobs.max(1) as f64;
        println!(
            "{{\"bench\":\"fig_scale\",\"driver\":\"decentral\",\"policy\":\"Hopper(dec)\",\
             \"jobs\":{jobs},\"machines\":{machines},\"total_slots\":{total_slots},\
             \"events\":{},\"wall_ms\":{wall_ms:.1},\"events_per_sec\":{eps:.0},\
             \"live_high_water\":{},\"live_high_water_pct\":{hw_pct:.3},\
             \"peak_rss_kb\":{},\"mean_jct_ms\":{:.1},\"p99_jct_ms\":{:.1},\
             \"makespan_ms\":{}}}",
            out.stats.events,
            out.live_high_water,
            peak_rss_kb(),
            out.digest.mean_ms(),
            out.digest.quantile_ms(0.99),
            out.stats.makespan.as_millis(),
        );
        assert!(
            out.live_high_water as f64 <= (jobs as f64 * 0.05).max(500.0),
            "live-job high-water {} exceeds 5% of {jobs} — retirement is not keeping up",
            out.live_high_water
        );
    }
}
