//! Streaming-pipeline scale bench (`cargo bench --bench fig_scale`).
//!
//! Not a paper figure: the paper simulates tens of thousands of jobs,
//! while the ROADMAP's north star is sustained arrival streams from
//! millions of users. This target walks the decentralized engine up the
//! job-count axis **through the streaming pipeline** (lazy arrivals,
//! retired jobs, digest-only metrics) and reports, per size:
//!
//! - events/sec (throughput must not degrade with stream length),
//! - the live-job high-water mark (the O(active) memory invariant —
//!   a small, roughly size-independent count, so its *fraction* of
//!   total jobs shrinks as the stream grows),
//! - peak RSS (`VmHWM`, Linux; 0 elsewhere). Sizes run ascending and
//!   `VmHWM` is process-monotonic, so each reading is the peak up to
//!   and including that size.
//!
//! One machine-parseable JSON line per size, like `throughput`.
//!
//! Sizing knobs:
//!
//! - `HOPPER_BENCH_SCALE_JOBS` — comma-separated job counts for the
//!   decentralized engine (default `10000,100000,1000000`; CI smoke
//!   passes a small list)
//! - `HOPPER_BENCH_SCALE_JOBS_CENTRAL` — job counts for the centralized
//!   engine (default `100000`: the incremental-allocator scale point;
//!   the central engine is ~2 orders slower per event than decentral,
//!   so it gets its own, smaller default axis)
//! - `HOPPER_BENCH_SCALE_ENGINES` — comma-separated engine filter,
//!   `decentral` / `central` (default both)
//! - `HOPPER_BENCH_MACHINES`   — cluster size (default 2 000)
//! - `HOPPER_BENCH_DRIFT`     — `realloc_drift` for the central run
//!   (default 0 = exact eager-equivalent reallocation)

use std::time::Instant;

use hopper_central::{self as central, HopperConfig, Policy, SimConfig};
use hopper_decentral::{self as decentral, DecConfig, DecPolicy};
use hopper_sim::SimTime;
use hopper_workload::{TraceGenerator, WorkloadProfile};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

fn job_counts() -> Vec<usize> {
    env_list("HOPPER_BENCH_SCALE_JOBS", &[10_000, 100_000, 1_000_000])
}

/// Peak resident set size in KiB (`VmHWM` from /proc; 0 off Linux).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// One JSON result line (shared by both engines).
#[allow(clippy::too_many_arguments)]
fn report(
    driver: &str,
    policy: &str,
    jobs: usize,
    machines: usize,
    total_slots: usize,
    events: u64,
    wall_ms: f64,
    live_high_water: usize,
    mean_jct_ms: f64,
    p99_jct_ms: f64,
    makespan_ms: u64,
) {
    let eps = if wall_ms > 0.0 {
        events as f64 / (wall_ms / 1000.0)
    } else {
        f64::INFINITY
    };
    let hw_pct = 100.0 * live_high_water as f64 / jobs.max(1) as f64;
    println!(
        "{{\"bench\":\"fig_scale\",\"driver\":\"{driver}\",\"policy\":\"{policy}\",\
         \"jobs\":{jobs},\"machines\":{machines},\"total_slots\":{total_slots},\
         \"events\":{events},\"wall_ms\":{wall_ms:.1},\"events_per_sec\":{eps:.0},\
         \"live_high_water\":{live_high_water},\"live_high_water_pct\":{hw_pct:.3},\
         \"peak_rss_kb\":{},\"mean_jct_ms\":{mean_jct_ms:.1},\"p99_jct_ms\":{p99_jct_ms:.1},\
         \"makespan_ms\":{makespan_ms}}}",
        peak_rss_kb(),
    );
    // The floor covers short smoke runs: the natural active set scales
    // with cluster capacity, not stream length, so small job counts sit
    // under `~slots/4` live jobs regardless of retirement. At the
    // default sizes (≥100k jobs) the 5% criterion dominates unchanged.
    assert!(
        live_high_water as f64
            <= (jobs as f64 * 0.05)
                .max(500.0)
                .max(total_slots as f64 / 4.0),
        "live-job high-water {live_high_water} exceeds 5% of {jobs} — retirement is not keeping up"
    );
}

fn main() {
    let machines = env_usize("HOPPER_BENCH_MACHINES", 2_000);
    let sizes = job_counts();
    let central_sizes = env_list("HOPPER_BENCH_SCALE_JOBS_CENTRAL", &[100_000]);
    let engines =
        std::env::var("HOPPER_BENCH_SCALE_ENGINES").unwrap_or_else(|_| "decentral,central".into());
    let engines: Vec<&str> = engines.split(',').map(str::trim).collect();
    let drift = env_f64("HOPPER_BENCH_DRIFT", 0.0);
    eprintln!(
        "fig_scale bench: streaming pipeline, {machines} machines, engines {engines:?}, \
         decentral sizes {sizes:?}, central sizes {central_sizes:?}, realloc_drift {drift} \
         (HOPPER_BENCH_SCALE_JOBS / HOPPER_BENCH_SCALE_JOBS_CENTRAL / \
         HOPPER_BENCH_SCALE_ENGINES / HOPPER_BENCH_MACHINES / HOPPER_BENCH_DRIFT)"
    );
    // The throughput bench's workload shape: interactive single-phase
    // Facebook jobs, the one that stresses per-event dispatch and the
    // arrival/retirement machinery rather than straggler modelling.
    let profile = WorkloadProfile::facebook().interactive().single_phase();
    let base_cfg = DecConfig {
        cluster: hopper_cluster::ClusterConfig {
            machines,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        num_schedulers: 20,
        scan_interval: SimTime::from_millis(1000),
        seed: 1,
        ..Default::default()
    };
    let total_slots = base_cfg.cluster.total_slots();
    if engines.contains(&"decentral") {
        for &jobs in &sizes {
            // The livelock valve defaults to a budget sized for ≤100k-job
            // runs; a million-job stream legitimately processes ~700M
            // events (~700 per job at this shape), so scale it with size.
            let cfg = DecConfig {
                max_events: (jobs as u64).saturating_mul(2_000).max(500_000_000),
                ..base_cfg.clone()
            };
            let stream = TraceGenerator::new(profile.clone(), jobs, 1)
                .stream_with_utilization(total_slots, 0.7);
            let start = Instant::now();
            let out = decentral::run_stream(stream, DecPolicy::Hopper, &cfg);
            let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
            report(
                "decentral",
                "Hopper(dec)",
                jobs,
                machines,
                total_slots,
                out.stats.events,
                wall_ms,
                out.report.live_high_water,
                out.report.digest.mean_ms(),
                out.report.digest.quantile_ms(0.99),
                out.stats.makespan.as_millis(),
            );
        }
    }
    // The centralized engine's streaming scale point: the incremental
    // allocator (ISSUE 6) is what makes ≥100k-job central streams
    // reachable at all — the eager O(active)-per-event allocator sat
    // ~500× below decentral throughput. `HOPPER_BENCH_DRIFT > 0`
    // additionally exercises the bounded-staleness mode at scale.
    if engines.contains(&"central") {
        let central_cluster = hopper_cluster::ClusterConfig {
            machines,
            slots_per_machine: 4,
            ..Default::default()
        };
        let central_slots = central_cluster.total_slots();
        for &jobs in &central_sizes {
            let cfg = SimConfig {
                cluster: central_cluster.clone(),
                scan_interval: SimTime::from_millis(1000),
                seed: 1,
                max_events: (jobs as u64).saturating_mul(2_000).max(200_000_000),
                ..Default::default()
            };
            let policy = Policy::Hopper(HopperConfig {
                realloc_drift: drift,
                ..Default::default()
            });
            let stream = TraceGenerator::new(profile.clone(), jobs, 1)
                .stream_with_utilization(central_slots, 0.7);
            let start = Instant::now();
            let out = central::run_stream(stream, &policy, &cfg);
            let wall_ms = start.elapsed().as_secs_f64() * 1000.0;
            report(
                "central",
                policy.name(),
                jobs,
                machines,
                central_slots,
                out.stats.events,
                wall_ms,
                out.report.live_high_water,
                out.report.digest.mean_ms(),
                out.report.digest.quantile_ms(0.99),
                out.stats.makespan.as_millis(),
            );
            eprintln!(
                "central alloc counters: recomputes {} suffix_fills {} reuses {} stale_skips {}",
                out.alloc_counters.recomputes,
                out.alloc_counters.suffix_fills,
                out.alloc_counters.reuses,
                out.alloc_counters.stale_skips
            );
        }
    }
}
