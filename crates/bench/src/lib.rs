//! Shared scaffolding for the paper-reproduction bench targets.
//!
//! Every bench target regenerates one table or figure of the paper. The
//! defaults are sized so the whole suite completes in tens of minutes on a
//! laptop; set `HOPPER_BENCH_JOBS` / `HOPPER_BENCH_SEEDS` to trade
//! precision for time.

use hopper_central::SimConfig;
use hopper_cluster::ClusterConfig;
use hopper_decentral::DecConfig;
use hopper_experiment::{EngineKind, ExperimentSpec};
use hopper_sim::SimTime;
use hopper_spec::{SpecConfig, Speculator};
use hopper_workload::{Trace, TraceGenerator, WorkloadProfile};

/// Number of jobs per experiment run (`HOPPER_BENCH_JOBS`, default 150).
pub fn jobs() -> usize {
    std::env::var("HOPPER_BENCH_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150)
}

/// Seeds (repetitions) per data point (`HOPPER_BENCH_SEEDS`, default 2).
pub fn seeds() -> u64 {
    std::env::var("HOPPER_BENCH_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
}

/// The bench seed list: `0..seeds()`, one trial per seed. The sweep
/// runner fans these out over worker threads.
pub fn seed_list() -> Vec<u64> {
    (0..seeds()).collect()
}

/// Decentralized experiment cell: the paper's deployment shape
/// ([`decentral_cluster`] + 10 schedulers, probe ratio 4, refusal
/// threshold 2, ε = 10%, LATE speculation) on an interactive trace —
/// the spec-constructor form of [`decentral_cfg`] +
/// [`fb_interactive_trace`]/[`bing_interactive_trace`], sized by
/// [`jobs`] and [`seed_list`].
pub fn decentral_spec(policy: &str, workload: &str, util: f64) -> ExperimentSpec {
    let mut s = ExperimentSpec::decentral();
    s.policy = policy.to_string();
    s.workload = workload.to_string();
    s.interactive = true;
    s.jobs = jobs();
    s.util = util;
    s.seeds = seed_list();
    s
}

/// Centralized experiment cell: the Figure 12/13 cluster
/// ([`central_cluster`]: 50×4 slots, 800 ms hand-off) with the
/// task-scale-appropriate scan period and LATE warm-up of
/// [`central_cfg`], per-job trace β (no online MLE — same rationale as
/// [`central_cfg`]), on the Facebook profile.
pub fn central_spec(policy: &str, interactive: bool, util: f64) -> ExperimentSpec {
    let mut s = ExperimentSpec::central();
    s.policy = policy.to_string();
    s.interactive = interactive;
    s.learn_beta = false;
    s.machines = 50;
    s.slots = 4;
    s.handoff_ms = 800;
    s.scan_ms = Some(if interactive { 200 } else { 500 });
    s.spec_min_elapsed_ms = Some(if interactive { 300 } else { 1000 });
    s.jobs = jobs();
    s.util = util;
    s.seeds = seed_list();
    s
}

/// Flip a decentralized spec into the centralized engine on the *same*
/// cluster, scan period, and speculation warm-up — the
/// centralized-reference point of Figure 5a (seeds and traces shared
/// with the decentralized cells, so ratios compare like with like).
pub fn centralized_reference(spec: &ExperimentSpec) -> ExperimentSpec {
    let mut s = spec.clone();
    s.engine = EngineKind::Central;
    s.policy = "hopper".to_string();
    s.scan_ms = Some(s.scan_ms.unwrap_or(200));
    s.spec_min_elapsed_ms = Some(s.spec_min_elapsed_ms.unwrap_or(300));
    s
}

/// The interactive (Spark-like) cluster used by the decentralized
/// experiments: many small workers, long-lived executors (no hand-off
/// cost), 1 ms scheduler↔worker messages.
pub fn decentral_cluster() -> ClusterConfig {
    ClusterConfig {
        machines: 300,
        slots_per_machine: 2,
        handoff_ms: 0,
        ..Default::default()
    }
}

/// Decentralized config with the paper's defaults: probe ratio 4,
/// refusal threshold 2, ε = 10%, LATE speculation.
pub fn decentral_cfg(seed: u64) -> DecConfig {
    DecConfig {
        cluster: decentral_cluster(),
        num_schedulers: 10,
        seed,
        ..Default::default()
    }
}

/// The centralized cluster (Figure 12/13 experiments): fewer, bigger
/// machines, with a container hand-off cost.
pub fn central_cluster() -> ClusterConfig {
    ClusterConfig {
        machines: 50,
        slots_per_machine: 4,
        handoff_ms: 800,
        ..Default::default()
    }
}

/// Centralized sim config with a task-scale-appropriate scan period.
///
/// β is taken per job from the trace rather than from the global online
/// MLE: the paper's recurring jobs make per-job β learnable from history,
/// and the global estimator's blend across heterogeneous jobs costs a few
/// percent (quantified by the `ablation_guidelines` bench).
pub fn central_cfg(seed: u64, interactive: bool) -> SimConfig {
    SimConfig {
        cluster: central_cluster(),
        scan_interval: if interactive {
            SimTime::from_millis(200)
        } else {
            SimTime::from_millis(500)
        },
        speculator: Speculator::Late(SpecConfig {
            min_elapsed: if interactive {
                SimTime::from_millis(300)
            } else {
                SimTime::from_millis(1000)
            },
            ..Default::default()
        }),
        seed,
        ..Default::default()
    }
}

/// Facebook-style interactive trace (the decentralized experiments run
/// "in-memory Spark jobs", §7.1) at a target utilization.
pub fn fb_interactive_trace(seed: u64, util: f64, total_slots: usize) -> Trace {
    let profile = WorkloadProfile::facebook().interactive();
    TraceGenerator::new(profile, jobs(), seed).generate_with_utilization(total_slots, util)
}

/// Bing-style interactive trace.
pub fn bing_interactive_trace(seed: u64, util: f64, total_slots: usize) -> Trace {
    let profile = WorkloadProfile::bing().interactive();
    TraceGenerator::new(profile, jobs(), seed).generate_with_utilization(total_slots, util)
}

/// Paper-style header printed by every bench target.
pub fn banner(figure: &str, what: &str) {
    println!("\n=== {figure} — {what} ===");
    println!(
        "(jobs/run: {}, seeds: {}; override via HOPPER_BENCH_JOBS / HOPPER_BENCH_SEEDS)",
        jobs(),
        seeds()
    );
}
