//! End-to-end integration tests across the whole workspace: trace
//! synthesis → centralized and decentralized simulation → metrics.

use hopper::central;
use hopper::cluster::ClusterConfig;
use hopper::decentral;
use hopper::metrics::GainCdf;
use hopper::sim::SimTime;
use hopper::workload::{TraceGenerator, WorkloadProfile};

fn fb_trace(seed: u64, n: usize, slots: usize, util: f64) -> hopper::workload::Trace {
    let profile = WorkloadProfile::facebook().interactive();
    TraceGenerator::new(profile, n, seed).generate_with_utilization(slots, util)
}

#[test]
fn centralized_policies_complete_same_trace() {
    let trace = fb_trace(1, 40, 100, 0.7);
    let cfg = central::SimConfig {
        cluster: ClusterConfig {
            machines: 25,
            slots_per_machine: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    for policy in [
        central::Policy::Fifo,
        central::Policy::Fair,
        central::Policy::Srpt,
        central::Policy::Hopper(central::HopperConfig::default()),
    ] {
        let out = central::run(&trace, &policy, &cfg);
        assert_eq!(out.jobs.len(), trace.len(), "{}", policy.name());
        // Every job completes after it arrives.
        for r in &out.jobs {
            assert!(r.completed >= r.arrival);
        }
    }
}

#[test]
fn decentralized_policies_complete_same_trace() {
    let trace = fb_trace(2, 40, 200, 0.7);
    let cfg = decentral::DecConfig {
        cluster: ClusterConfig {
            machines: 100,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed: 2,
        ..Default::default()
    };
    for policy in [
        decentral::DecPolicy::Sparrow,
        decentral::DecPolicy::SparrowSrpt,
        decentral::DecPolicy::Hopper,
    ] {
        let out = decentral::run(&trace, policy, &cfg);
        assert_eq!(out.jobs.len(), trace.len(), "{}", policy.name());
    }
}

#[test]
fn same_seed_same_results_everywhere() {
    let trace = fb_trace(3, 30, 100, 0.7);
    let mut ccfg = central::SimConfig::default();
    ccfg.cluster.machines = 25;
    ccfg.cluster.slots_per_machine = 4;
    let a = central::run(
        &trace,
        &central::Policy::Hopper(central::HopperConfig::default()),
        &ccfg,
    );
    let b = central::run(
        &trace,
        &central::Policy::Hopper(central::HopperConfig::default()),
        &ccfg,
    );
    assert_eq!(a.stats.events, b.stats.events);
    assert_eq!(a.stats.spec_launched, b.stats.spec_launched);
    for (x, y) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(x.completed, y.completed);
    }

    let dcfg = decentral::DecConfig {
        cluster: ClusterConfig {
            machines: 100,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed: 3,
        ..Default::default()
    };
    let c = decentral::run(&trace, decentral::DecPolicy::Hopper, &dcfg);
    let d = decentral::run(&trace, decentral::DecPolicy::Hopper, &dcfg);
    assert_eq!(c.stats.events, d.stats.events);
    for (x, y) in c.jobs.iter().zip(&d.jobs) {
        assert_eq!(x.completed, y.completed);
    }
}

#[test]
fn decentralized_hopper_beats_sparrow_on_contended_cluster() {
    // The headline claim, at small scale: coordinated speculation beats
    // stock Sparrow on a heavy-tailed interactive workload.
    let mut sparrow = 0.0;
    let mut hopper = 0.0;
    for seed in 0..3 {
        let trace = fb_trace(seed + 10, 80, 400, 0.8);
        let cfg = decentral::DecConfig {
            cluster: ClusterConfig {
                machines: 200,
                slots_per_machine: 2,
                handoff_ms: 0,
                ..Default::default()
            },
            seed,
            ..Default::default()
        };
        sparrow += decentral::run(&trace, decentral::DecPolicy::Sparrow, &cfg).mean_duration_ms();
        hopper += decentral::run(&trace, decentral::DecPolicy::Hopper, &cfg).mean_duration_ms();
    }
    assert!(
        hopper < sparrow,
        "hopper {hopper:.0} must beat sparrow {sparrow:.0}"
    );
}

#[test]
fn speculation_disabled_is_much_slower_on_heavy_tails() {
    // Sanity for the straggler model: turning speculation off leaves the
    // job at the mercy of the slowest Pareto draw.
    let trace = fb_trace(7, 40, 100, 0.6);
    let mut cfg = central::SimConfig::default();
    cfg.cluster.machines = 25;
    cfg.cluster.slots_per_machine = 4;
    let with_spec = central::run(&trace, &central::Policy::Srpt, &cfg).mean_duration_ms();
    cfg.speculator = hopper::spec::Speculator::None;
    let without = central::run(&trace, &central::Policy::Srpt, &cfg).mean_duration_ms();
    assert!(
        without > with_spec * 1.2,
        "speculation should matter: with {with_spec:.0}, without {without:.0}"
    );
}

#[test]
fn gain_cdf_between_real_runs_is_well_formed() {
    let trace = fb_trace(9, 50, 100, 0.7);
    let mut cfg = central::SimConfig::default();
    cfg.cluster.machines = 25;
    cfg.cluster.slots_per_machine = 4;
    let base = central::run(&trace, &central::Policy::Srpt, &cfg);
    let hop = central::run(
        &trace,
        &central::Policy::Hopper(central::HopperConfig::default()),
        &cfg,
    );
    let cdf = GainCdf::between(&base.jobs, &hop.jobs);
    assert_eq!(cdf.gains.len(), trace.len());
    assert!(cdf.value_at(0.0) <= cdf.value_at(0.5));
    assert!(cdf.value_at(0.5) <= cdf.value_at(1.0));
    assert!((0.0..=1.0).contains(&cdf.fraction_slowed()));
}

#[test]
fn makespan_bounds_hold() {
    let trace = fb_trace(11, 30, 100, 0.7);
    let mut cfg = central::SimConfig::default();
    cfg.cluster.machines = 25;
    cfg.cluster.slots_per_machine = 4;
    let out = central::run(&trace, &central::Policy::Srpt, &cfg);
    // Makespan is at least the serial-work lower bound / slots and at
    // least the latest arrival.
    assert!(out.stats.makespan >= trace.makespan_lower_bound());
    let serial_ms = trace.total_work_ms() / cfg.cluster.total_slots() as u64;
    assert!(out.stats.makespan >= SimTime::from_millis(serial_ms / 4));
}

#[test]
fn bushy_dags_run_to_completion_in_both_drivers() {
    // §4.2's "wide and bushy" DAGs: two input branches joining downstream.
    let profile = WorkloadProfile::facebook()
        .interactive()
        .fixed_dag_len(3)
        .with_bushy(1.0);
    let trace = TraceGenerator::new(profile, 15, 21).generate_with_utilization(200, 0.6);
    assert!(trace.jobs.iter().all(|j| j.dag_len() == 4));

    let ccfg = central::SimConfig {
        cluster: ClusterConfig {
            machines: 50,
            slots_per_machine: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let out = central::run(
        &trace,
        &central::Policy::Hopper(central::HopperConfig::default()),
        &ccfg,
    );
    assert_eq!(out.jobs.len(), trace.len());

    let dcfg = decentral::DecConfig {
        cluster: ClusterConfig {
            machines: 100,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed: 21,
        ..Default::default()
    };
    let dout = decentral::run(&trace, decentral::DecPolicy::Hopper, &dcfg);
    assert_eq!(dout.jobs.len(), trace.len());
}

#[test]
fn weighted_jobs_get_larger_fair_floors() {
    // A weight-3 job must get a visibly larger share than a weight-1 job
    // under tight fairness, all else equal.
    use hopper::core::{allocate, AllocConfig, JobDemand};
    let mut heavy = JobDemand::simple(0, 1000.0, 1.5);
    heavy.weight = 3.0;
    let light = JobDemand::simple(1, 1000.0, 1.5);
    let cfg = AllocConfig {
        fairness_eps: 0.0,
        ..Default::default()
    };
    let allocs = allocate(&[heavy, light], 120, &cfg);
    assert_eq!(allocs[0].slots, 90);
    assert_eq!(allocs[1].slots, 30);
}
