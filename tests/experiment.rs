//! Integration tests for the experiment layer: the parallel-determinism
//! invariant of `sweep()`, and `ExperimentSpec` round-tripping through
//! its `key=value` text form (the same mapping the CLI flags use).

use hopper::experiment::{
    run_seeds, sweep_serial, sweep_with_threads, EngineKind, ExperimentSpec, SweepAxis,
};

fn tiny(engine: EngineKind) -> ExperimentSpec {
    let mut s = match engine {
        EngineKind::Central => {
            let mut s = ExperimentSpec::central();
            s.machines = 10;
            s.slots = 4;
            s
        }
        EngineKind::Decentral => {
            let mut s = ExperimentSpec::decentral();
            s.machines = 30;
            s
        }
    };
    s.jobs = 8;
    s.interactive = true;
    s.util = 0.6;
    s.seeds = vec![1, 2, 3];
    s
}

/// The tentpole invariant: a parallel sweep over ≥2 worker threads is
/// bit-identical to a serial fold over the same grid — both engines,
/// two policies each, three seeds. Each trial owns its seed-derived
/// RNGs and results are collected in grid order, so thread scheduling
/// cannot leak into the output.
#[test]
fn parallel_sweep_is_bit_identical_to_serial() {
    for (engine, policies) in [
        (EngineKind::Central, ["srpt", "hopper"]),
        (EngineKind::Decentral, ["sparrow", "hopper"]),
    ] {
        let spec = tiny(engine);
        let axis = SweepAxis::new("policy", &policies);
        let serial = sweep_serial(&spec, &axis).expect("serial sweep");
        for threads in [2, 4] {
            let parallel = sweep_with_threads(&spec, &axis, threads).expect("parallel sweep");
            // Full structural equality: per-job completion times, all
            // counters, grid order — not just aggregate means.
            assert_eq!(
                serial, parallel,
                "{:?} sweep diverged at {threads} threads",
                engine
            );
        }
        assert_eq!(serial.trials.len(), 6, "2 policies × 3 seeds");
        assert_eq!(serial.axis_values(), policies.to_vec());
    }
}

/// `run_seeds` (the no-axis primitive the figure benches use) obeys the
/// same invariant: parallel execution reproduces the per-seed
/// `run_one` results exactly, in seed-list order.
#[test]
fn run_seeds_matches_serial_run_one_per_seed() {
    let spec = tiny(EngineKind::Decentral);
    let trials = run_seeds(&spec).expect("run_seeds");
    assert_eq!(trials.len(), spec.seeds.len());
    for (trial, &seed) in trials.iter().zip(&spec.seeds) {
        assert_eq!(trial.seed, seed);
        let direct = spec.run_one(seed).expect("run_one");
        assert_eq!(trial.jobs, direct.jobs());
        assert_eq!(trial.report.core, direct.report().core);
    }
}

/// parse → render → parse is identity, for specs of both engines,
/// including optional fields in both their `none` and set states.
#[test]
fn spec_text_round_trips() {
    let mut central = tiny(EngineKind::Central);
    central.fixed_beta = Some(1.5);
    central.scan_ms = Some(200);
    central.policy = "budgeted".to_string();
    let mut decentral = tiny(EngineKind::Decentral);
    decentral.workload = "bing".to_string();
    decentral.probe_ratio = 3.5;
    for spec in [central, decentral] {
        let text = spec.render();
        let parsed = ExperimentSpec::parse(&text).expect("rendered spec parses");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.render(), text, "render is canonical");
    }
}

/// Unknown keys are rejected with an error naming the key and line —
/// this is also what catches a mistyped CLI `key=value` argument.
#[test]
fn spec_rejects_unknown_keys_with_context() {
    let err = ExperimentSpec::parse("engine=decentral\nutilization=0.8\n").unwrap_err();
    assert!(err.0.contains("unknown key `utilization`"), "{err}");
    assert!(err.0.contains("line 2"), "{err}");
    assert!(err.0.contains("util"), "lists known keys: {err}");

    // The sweep axis goes through the same dispatch.
    let spec = tiny(EngineKind::Decentral);
    let axis = SweepAxis::new("probe_ration", &[2.0, 4.0]);
    let err = sweep_with_threads(&spec, &axis, 2).unwrap_err();
    assert!(err.0.contains("unknown key `probe_ration`"), "{err}");
}

/// The flag↔field mapping the thin CLI builders rely on: every classic
/// flag spelling lands on the spec field of the same meaning.
#[test]
fn cli_flag_mapping_covers_the_classic_flags() {
    let mut spec = ExperimentSpec::decentral();
    for (key, value) in [
        ("policy", "sparrow-srpt"),
        ("jobs", "44"),
        ("machines", "120"),
        ("slots", "3"),
        ("util", "0.85"),
        ("seeds", "9"),
        ("workload", "bing"),
        ("interactive", "true"),
        ("eps", "0.2"),
        ("probe_ratio", "3.5"),
        ("refusals", "4"),
    ] {
        spec.set(key, value).expect(key);
    }
    assert_eq!(spec.policy, "sparrow-srpt");
    assert_eq!(spec.jobs, 44);
    assert_eq!(spec.machines, 120);
    assert_eq!(spec.slots, 3);
    assert_eq!(spec.util, 0.85);
    assert_eq!(spec.seeds, vec![9]);
    assert_eq!(spec.workload, "bing");
    assert!(spec.interactive);
    assert_eq!(spec.eps, 0.2);
    assert_eq!(spec.probe_ratio, 3.5);
    assert_eq!(spec.refusals, 4);
    spec.validate().expect("still a valid decentral spec");
}
