//! Golden-stats regression tests for the incremental-index refactor.
//!
//! `tests/determinism.rs` pins *run-to-run* reproducibility; this suite
//! pins *version-to-version* reproducibility: the exact `RunStats` /
//! `DecStats` and per-job completion times produced by fixed seeds under
//! every policy, captured before the indexed hot paths landed. The indices
//! (job counters, free-machine set, locality maps — see DESIGN.md) must be
//! pure caches: any drift in tie-breaking or float accumulation shows up
//! here as a diff against `tests/goldens/stats.txt`.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```sh
//! HOPPER_UPDATE_GOLDENS=1 cargo test --test golden_stats
//! ```

use std::fmt::Write as _;

use hopper::central;
use hopper::cluster::ClusterConfig;
use hopper::decentral;
use hopper::workload::{Trace, TraceGenerator, WorkloadProfile};

const GOLDEN_PATH: &str = "tests/goldens/stats.txt";

fn trace(seed: u64) -> Trace {
    // Multi-phase interactive trace: exercises DAG eligibility, shuffle
    // transfers (α), locality, and speculation in one workload.
    let profile = WorkloadProfile::facebook().interactive();
    TraceGenerator::new(profile, 30, seed).generate_with_utilization(100, 0.7)
}

fn central_cfg(seed: u64) -> central::SimConfig {
    central::SimConfig {
        cluster: ClusterConfig {
            machines: 25,
            slots_per_machine: 4,
            ..Default::default()
        },
        seed,
        ..Default::default()
    }
}

fn decentral_cfg(seed: u64) -> decentral::DecConfig {
    decentral::DecConfig {
        cluster: ClusterConfig {
            machines: 50,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed,
        ..Default::default()
    }
}

/// FNV-1a over the full per-job outcome tuple: any bit of drift in any
/// job's completion time changes the digest.
fn jobs_digest(jobs: &[hopper::metrics::JobResult]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for j in jobs {
        mix(j.job as u64);
        mix(j.size_tasks as u64);
        mix(j.dag_len as u64);
        mix(j.arrival.as_millis());
        mix(j.completed.as_millis());
    }
    h
}

/// Render every scenario's stats as stable text. `Debug` for the stats
/// structs prints f64 fields with shortest-roundtrip formatting, so two
/// renders are equal iff the stats are bit-identical.
fn render_goldens() -> String {
    let mut out = String::new();
    let central_policies: Vec<(&str, central::Policy)> = vec![
        ("fifo", central::Policy::Fifo),
        ("fair", central::Policy::Fair),
        ("srpt", central::Policy::Srpt),
        (
            "budgeted",
            central::Policy::BudgetedSrpt {
                budget_fraction: 0.2,
            },
        ),
        (
            "hopper",
            central::Policy::Hopper(central::HopperConfig::default()),
        ),
    ];
    for seed in [5u64, 11] {
        let t = trace(seed);
        for (name, policy) in &central_policies {
            let r = central::run(&t, policy, &central_cfg(seed));
            writeln!(
                out,
                "central/{name}/seed{seed}: jobs_digest={:#018x} stats={:?}",
                jobs_digest(&r.jobs),
                r.stats
            )
            .unwrap();
        }
        for policy in [
            decentral::DecPolicy::Sparrow,
            decentral::DecPolicy::SparrowSrpt,
            decentral::DecPolicy::Hopper,
        ] {
            let r = decentral::run(&t, policy, &decentral_cfg(seed));
            writeln!(
                out,
                "decentral/{}/seed{seed}: jobs_digest={:#018x} stats={:?}",
                policy.name(),
                jobs_digest(&r.jobs),
                r.stats
            )
            .unwrap();
        }
    }
    out
}

#[test]
fn stats_match_pre_refactor_goldens() {
    let actual = render_goldens();
    if std::env::var("HOPPER_UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all("tests/goldens").unwrap();
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        eprintln!("goldens rewritten at {GOLDEN_PATH}");
        return;
    }
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("missing tests/goldens/stats.txt — run with HOPPER_UPDATE_GOLDENS=1 once");
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(
            e,
            a,
            "golden line {} drifted — stats are no longer bit-identical",
            i + 1
        );
    }
    assert_eq!(
        expected.lines().count(),
        actual.lines().count(),
        "golden scenario count changed"
    );
}
