//! Golden-stats regression tests for the incremental-index refactor.
//!
//! `tests/determinism.rs` pins *run-to-run* reproducibility; this suite
//! pins *version-to-version* reproducibility: the exact `RunStats` /
//! `DecStats` and per-job completion times produced by fixed seeds under
//! every policy, captured before the indexed hot paths landed. The indices
//! (job counters, free-machine set, locality maps — see DESIGN.md) must be
//! pure caches: any drift in tie-breaking or float accumulation shows up
//! here as a diff against `tests/goldens/stats.txt`.
//!
//! The scenario grid, digest, and renderer live in `tests/common/mod.rs`,
//! shared with `tests/dynamics.rs` (which pins the same goldens under a
//! neutral-but-enabled dynamics plane).
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```sh
//! HOPPER_UPDATE_GOLDENS=1 cargo test --test golden_stats
//! ```

mod common;

use hopper::cluster::DynamicsConfig;

#[test]
fn stats_match_pre_refactor_goldens() {
    let actual = common::render_goldens(&DynamicsConfig::off());
    if std::env::var("HOPPER_UPDATE_GOLDENS").is_ok() {
        std::fs::create_dir_all("tests/goldens").unwrap();
        std::fs::write(common::GOLDEN_PATH, &actual).unwrap();
        eprintln!("goldens rewritten at {}", common::GOLDEN_PATH);
        return;
    }
    common::assert_matches_goldens(&actual, "stats are no longer bit-identical");
}
