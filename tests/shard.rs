//! Sharded conservative-PDES engine: the partition-independence suite.
//!
//! The contract under test (DESIGN.md, "Sharded execution"): for a fixed
//! `DecConfig`, every shard count `>= 1` is **bit-identical** — same
//! `DecStats`, same per-job results, same digest — because window
//! boundaries, event order (`EventKey`), and every RNG stream are
//! independent of how entities were partitioned. The suite pins that
//! across policies × seeds × dynamics storms × message-fault storms ×
//! streaming, with the dev-profile conservation auditor live inside
//! every run (so "passed" also means "no slot leaked and every counter
//! reconciled on every shard").
//!
//! `shards = 0` stays the serial driver (its goldens are pinned
//! elsewhere); it is a *different* documented equivalence family, so no
//! test here compares shards=0 against shards>=1 outputs.

use hopper::cluster::{ClusterConfig, DynamicsConfig, HeteroProfile};
use hopper::decentral::{self, DecConfig, DecPolicy, FaultConfig};
use hopper::workload::{Trace, TraceGenerator, WorkloadProfile};

fn trace(seed: u64, jobs: usize) -> Trace {
    let profile = WorkloadProfile::facebook().interactive();
    TraceGenerator::new(profile, jobs, seed).generate_with_utilization(100, 0.7)
}

fn cfg(seed: u64, shards: usize) -> DecConfig {
    DecConfig {
        cluster: ClusterConfig {
            machines: 50,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        num_schedulers: 5,
        seed,
        shards,
        ..Default::default()
    }
}

const POLICIES: [DecPolicy; 3] = [
    DecPolicy::Sparrow,
    DecPolicy::SparrowSrpt,
    DecPolicy::Hopper,
];

/// Assert two sharded outputs are bit-identical in everything the
/// determinism contract covers.
fn assert_same(a: &decentral::DecOutput, b: &decentral::DecOutput, ctx: &str) {
    assert_eq!(a.stats, b.stats, "DecStats drifted: {ctx}");
    assert_eq!(a.jobs, b.jobs, "per-job results drifted: {ctx}");
    assert_eq!(a.report.digest, b.report.digest, "digest drifted: {ctx}");
    assert_eq!(
        a.report.live_high_water, b.report.live_high_water,
        "live high-water drifted: {ctx}"
    );
    // Window boundaries are partition-independent, so the window count
    // is too (stalls and the cross/local message split are not).
    let (sa, sb) = (a.shard.as_ref().unwrap(), b.shard.as_ref().unwrap());
    assert_eq!(sa.windows, sb.windows, "window count drifted: {ctx}");
    assert_eq!(
        sa.cross_msgs + sa.local_msgs,
        sb.cross_msgs + sb.local_msgs,
        "total message count drifted: {ctx}"
    );
}

/// Every shard count ≥ 1 must produce the same bits, for every policy
/// and seed, on the plain (dynamics-off, faults-off) configuration.
#[test]
fn shard_counts_are_bit_identical_plain() {
    for policy in POLICIES {
        for seed in [1, 7] {
            let t = trace(seed, 30);
            let base = decentral::run(&t, policy, &cfg(seed, 1));
            assert_eq!(
                base.jobs.len(),
                30,
                "not all jobs completed: {}/seed{seed}",
                policy.name()
            );
            for shards in [2, 4] {
                let got = decentral::run(&t, policy, &cfg(seed, shards));
                let ctx = format!("{}/seed{seed}/shards{shards}", policy.name());
                assert_same(&base, &got, &ctx);
                assert_eq!(got.shard.as_ref().unwrap().shards, shards, "{ctx}");
            }
        }
    }
}

/// Same-seed sharded runs are reproducible (trivially implied by the
/// cross-count test, but this is the cheap canary when that one fails).
#[test]
fn sharded_run_is_deterministic_for_same_seed() {
    let t = trace(3, 30);
    let a = decentral::run(&t, DecPolicy::Hopper, &cfg(3, 2));
    let b = decentral::run(&t, DecPolicy::Hopper, &cfg(3, 2));
    assert_same(&a, &b, "Hopper/seed3/shards2 repeat");
}

/// Partition independence must survive the full dynamics plane:
/// heterogeneous base speeds, transient slowdowns, and machine failures
/// (each machine's incident chain is replicated deterministically on
/// every shard, but applied only by its owner).
#[test]
fn shard_counts_are_bit_identical_under_dynamics() {
    let dynamics = DynamicsConfig {
        hetero: HeteroProfile::Bimodal {
            slow_frac: 0.2,
            slow_factor: 0.5,
        },
        slowdown_rate_per_hour: 30.0,
        fail_rate_per_hour: 10.0,
        recovery_ms: (5_000, 15_000),
        ..DynamicsConfig::off()
    };
    for policy in [DecPolicy::Hopper, DecPolicy::Sparrow] {
        for seed in [2, 5] {
            let t = trace(seed, 25);
            let mut c = cfg(seed, 1);
            c.dynamics = dynamics.clone();
            let base = decentral::run(&t, policy, &c);
            assert_eq!(base.jobs.len(), 25, "job lost under dynamics");
            for shards in [2, 4] {
                let mut c = cfg(seed, shards);
                c.dynamics = dynamics.clone();
                let got = decentral::run(&t, policy, &c);
                let ctx = format!("dyn/{}/seed{seed}/shards{shards}", policy.name());
                assert_same(&base, &got, &ctx);
            }
        }
    }
}

/// The acceptance-rate message-fault storm (loss, jitter, duplication,
/// and scheduler crash/recover), sharded: still bit-identical across
/// shard counts, still completes every job, and the storm is not
/// vacuous. The dev-profile auditor rides inside every run, so this is
/// also the "chaos stays auditor-silent under sharding" gate.
#[test]
fn shard_counts_are_bit_identical_under_fault_storm() {
    let storm = FaultConfig {
        msg_loss: 0.05,
        msg_jitter_ms: 5,
        msg_dup: 0.02,
        sched_fail_rate_per_hour: 400.0,
        sched_mttr_ms: 1_500,
        rpc_timeout_ms: 1_000,
        rpc_retries: 3,
    };
    for policy in POLICIES {
        let seed = 11;
        let t = trace(seed, 25);
        let mut c = cfg(seed, 1);
        c.faults = storm;
        let base = decentral::run(&t, policy, &c);
        assert_eq!(base.jobs.len(), 25, "job lost in storm: {}", policy.name());
        assert!(
            base.stats.msgs_lost > 0 && base.stats.msgs_duplicated > 0,
            "storm was vacuous: {}",
            policy.name()
        );
        for shards in [2, 4] {
            let mut c = cfg(seed, shards);
            c.faults = storm;
            let got = decentral::run(&t, policy, &c);
            let ctx = format!("storm/{}/shards{shards}", policy.name());
            assert_same(&base, &got, &ctx);
        }
    }
}

/// Dynamics *and* the message storm at once — the worst case the serial
/// chaos suite exercises, across shard counts.
#[test]
fn shard_counts_survive_combined_chaos() {
    let mut base_cfg = cfg(13, 1);
    base_cfg.dynamics = DynamicsConfig {
        hetero: HeteroProfile::Uniform { lo: 0.5, hi: 2.0 },
        fail_rate_per_hour: 20.0,
        recovery_ms: (2_000, 8_000),
        ..DynamicsConfig::off()
    };
    base_cfg.faults = FaultConfig {
        msg_loss: 0.03,
        msg_jitter_ms: 3,
        msg_dup: 0.02,
        sched_fail_rate_per_hour: 200.0,
        sched_mttr_ms: 1_000,
        rpc_timeout_ms: 800,
        rpc_retries: 3,
    };
    let t = trace(13, 20);
    let base = decentral::run(&t, DecPolicy::Hopper, &base_cfg);
    assert_eq!(base.jobs.len(), 20, "job lost in combined chaos");
    for shards in [2, 4] {
        let mut c = base_cfg.clone();
        c.shards = shards;
        let got = decentral::run(&t, DecPolicy::Hopper, &c);
        assert_same(&base, &got, &format!("chaos/shards{shards}"));
    }
}

/// Streaming (lazy arrivals + job retirement + `max_jobs` truncation)
/// under sharding: bit-identical to the materialized run of the same
/// stream at the same shard count, and across shard counts.
#[test]
fn sharded_streaming_matches_materialized_and_shard_counts() {
    let profile = WorkloadProfile::facebook().interactive();
    let generator = TraceGenerator::new(profile, 60, 9);
    let stream = generator.stream_with_utilization(100, 0.7).truncated(40);
    let materialized = hopper::workload::Trace::new(stream.clone().collect());

    let base = decentral::run(&materialized, DecPolicy::Hopper, &cfg(9, 1));
    assert_eq!(base.jobs.len(), 40, "truncated stream job count");
    for shards in [1, 2, 4] {
        let got = decentral::run_stream(stream.clone(), DecPolicy::Hopper, &cfg(9, shards));
        let ctx = format!("stream/shards{shards}");
        assert!(got.jobs.is_empty(), "streaming retained jobs: {ctx}");
        assert_eq!(base.stats, got.stats, "DecStats drifted: {ctx}");
        assert_eq!(
            base.report.digest, got.report.digest,
            "digest drifted: {ctx}"
        );
    }
}

/// `shards = 0` keeps the untouched serial driver (no `ShardStats`);
/// `shards >= 1` reports engine counters that actually moved.
#[test]
fn shard_stats_reported_only_when_sharded() {
    let t = trace(1, 10);
    let serial = decentral::run(&t, DecPolicy::Hopper, &cfg(1, 0));
    assert!(serial.shard.is_none(), "serial driver grew ShardStats");
    let sharded = decentral::run(&t, DecPolicy::Hopper, &cfg(1, 2));
    let s = sharded.shard.expect("sharded run must report ShardStats");
    assert_eq!(s.shards, 2);
    assert!(s.windows > 0, "no conservative windows executed");
    assert!(s.cross_msgs > 0, "two shards never exchanged a message");
}

/// The conservative lookahead is the message latency; a zero-latency
/// config has no lookahead and must be rejected loudly, not silently
/// mis-simulated.
#[test]
#[should_panic(expected = "lookahead")]
fn zero_msg_latency_is_rejected_when_sharded() {
    let t = trace(1, 5);
    let mut c = cfg(1, 2);
    c.msg_latency = hopper::sim::SimTime::ZERO;
    decentral::run(&t, DecPolicy::Hopper, &c);
}
