//! Determinism regression tests: the `rng_from_seed` / `SeedSequence`
//! contract says a single `u64` seed reproduces an entire experiment
//! bit-for-bit, in both drivers. These tests guard that contract end to
//! end — same seed ⇒ identical `RunStats` / `DecStats` and per-job
//! results; different seeds ⇒ observably different runs.
//!
//! `tests/golden_stats.rs` extends the suite across *versions*: fixed
//! seeds must reproduce the stats captured before the incremental-index
//! refactor, for every policy in both drivers.

use hopper::central;
use hopper::cluster::ClusterConfig;
use hopper::decentral;
use hopper::workload::{Trace, TraceGenerator, WorkloadProfile};

fn trace(seed: u64) -> Trace {
    let profile = WorkloadProfile::facebook().interactive();
    TraceGenerator::new(profile, 30, seed).generate_with_utilization(100, 0.7)
}

fn central_cfg(seed: u64) -> central::SimConfig {
    central::SimConfig {
        cluster: ClusterConfig {
            machines: 25,
            slots_per_machine: 4,
            ..Default::default()
        },
        seed,
        ..Default::default()
    }
}

fn decentral_cfg(seed: u64) -> decentral::DecConfig {
    decentral::DecConfig {
        cluster: ClusterConfig {
            machines: 50,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed,
        ..Default::default()
    }
}

#[test]
fn central_run_is_bit_identical_for_same_seed() {
    let t = trace(5);
    let policy = central::Policy::Hopper(central::HopperConfig::default());
    let a = central::run(&t, &policy, &central_cfg(5));
    let b = central::run(&t, &policy, &central_cfg(5));
    assert_eq!(a.stats, b.stats, "RunStats must be bit-identical");
    assert_eq!(a.jobs, b.jobs, "per-job results must be bit-identical");
}

#[test]
fn central_runs_differ_across_seeds() {
    // Same trace, different simulation seed: the straggler draws differ,
    // so some observable output must differ.
    let t = trace(5);
    let policy = central::Policy::Hopper(central::HopperConfig::default());
    let a = central::run(&t, &policy, &central_cfg(5));
    let b = central::run(&t, &policy, &central_cfg(6));
    assert!(
        a.stats != b.stats || a.jobs != b.jobs,
        "different seeds produced identical central runs"
    );
}

#[test]
fn central_traces_differ_across_workload_seeds() {
    let a = trace(5);
    let b = trace(6);
    assert_ne!(
        a.total_work_ms(),
        b.total_work_ms(),
        "different workload seeds produced identical traces"
    );
}

#[test]
fn decentral_run_is_bit_identical_for_same_seed() {
    let t = trace(7);
    for policy in [decentral::DecPolicy::Sparrow, decentral::DecPolicy::Hopper] {
        let a = decentral::run(&t, policy, &decentral_cfg(7));
        let b = decentral::run(&t, policy, &decentral_cfg(7));
        assert_eq!(
            a.stats,
            b.stats,
            "DecStats must be bit-identical ({})",
            policy.name()
        );
        assert_eq!(
            a.jobs,
            b.jobs,
            "per-job results must be bit-identical ({})",
            policy.name()
        );
    }
}

#[test]
fn decentral_runs_differ_across_seeds() {
    let t = trace(7);
    let a = decentral::run(&t, decentral::DecPolicy::Hopper, &decentral_cfg(7));
    let b = decentral::run(&t, decentral::DecPolicy::Hopper, &decentral_cfg(8));
    assert!(
        a.stats != b.stats || a.jobs != b.jobs,
        "different seeds produced identical decentralized runs"
    );
}
