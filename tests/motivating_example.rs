//! Integration test: the §3 motivating example end-to-end through the
//! public API, reproducing Table 1 / Figures 1a, 1b, and 2 exactly.

use hopper::central::scenario::{motivating_sim_config, motivating_trace};
use hopper::central::{run, HopperConfig, Policy};

fn durations(policy: &Policy) -> (u64, u64) {
    let (trace, _) = motivating_trace();
    let out = run(&trace, policy, &motivating_sim_config());
    let a = out.jobs.iter().find(|r| r.job == 0).unwrap().duration_ms();
    let b = out.jobs.iter().find(|r| r.job == 1).unwrap().duration_ms();
    (a, b)
}

#[test]
fn figure_1a_best_effort() {
    assert_eq!(durations(&Policy::Srpt), (20_000, 30_000));
}

#[test]
fn figure_1b_budgeted() {
    let p = Policy::BudgetedSrpt {
        budget_fraction: 3.0 / 7.0,
    };
    assert_eq!(durations(&p), (12_000, 32_000));
}

#[test]
fn figure_2_hopper() {
    let p = Policy::Hopper(HopperConfig::pure());
    assert_eq!(durations(&p), (12_000, 22_000));
}

#[test]
fn coordination_beats_both_strawmen_on_average() {
    let best_effort = durations(&Policy::Srpt);
    let budgeted = durations(&Policy::BudgetedSrpt {
        budget_fraction: 3.0 / 7.0,
    });
    let hopper = durations(&Policy::Hopper(HopperConfig::pure()));
    let avg = |(a, b): (u64, u64)| (a + b) / 2;
    assert!(avg(hopper) < avg(best_effort));
    assert!(avg(hopper) < avg(budgeted));
    assert_eq!(avg(hopper), 17_000);
}
