//! CSV trace-replay round-trip tests.
//!
//! The replay plane's contract: a trace exported with
//! [`export_replay_csv`] and re-ingested with [`parse_replay_csv`] is
//! the *same experiment* — bit-identical [`RunReport`]s on both
//! engines, whatever the pipeline shape (jobs retained or streamed,
//! serial or sharded). Malformed input is rejected with the offending
//! line number, end to end through the experiment spec.

use std::sync::Arc;

use hopper::cluster::{ClusterConfig, DynamicsConfig};
use hopper::workload::{
    export_replay_csv, parse_replay_csv, ArrivalSource, Trace, TraceGenerator, WorkloadProfile,
};
use hopper::{central, decentral};

/// A replayable trace: generated, exported, and re-ingested once so the
/// CSV schema (not the generator's in-memory extras) defines the jobs.
fn replayed_trace(seed: u64) -> (Arc<Trace>, String) {
    let profile = WorkloadProfile::facebook().interactive();
    let t = TraceGenerator::new(profile, 30, seed).generate_with_utilization(100, 0.7);
    let csv = export_replay_csv(&t);
    let trace = parse_replay_csv(&csv).expect("exported CSV must re-ingest");
    (Arc::new(trace), csv)
}

fn central_cfg(seed: u64) -> central::SimConfig {
    central::SimConfig {
        cluster: ClusterConfig {
            machines: 25,
            slots_per_machine: 4,
            ..Default::default()
        },
        seed,
        telemetry_window_ms: 5_000,
        ..Default::default()
    }
}

fn decentral_cfg(seed: u64, shards: usize) -> decentral::DecConfig {
    decentral::DecConfig {
        cluster: ClusterConfig {
            machines: 50,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed,
        shards,
        telemetry_window_ms: 5_000,
        dynamics: DynamicsConfig::off(),
        ..Default::default()
    }
}

/// Export → re-ingest → export is a fixpoint: once a trace has been
/// through the CSV schema, another round trip changes nothing.
#[test]
fn export_ingest_is_a_fixpoint_at_the_pipeline_level() {
    for seed in [1u64, 7, 19] {
        let (trace, csv) = replayed_trace(seed);
        assert_eq!(
            export_replay_csv(&trace),
            csv,
            "seed {seed}: export∘ingest moved the CSV"
        );
    }
}

/// Central engine: the re-ingested trace produces a bit-identical
/// `RunReport` whether jobs are retained or streamed through the
/// retirement pipeline, and re-ingesting a second time changes nothing.
#[test]
fn central_replay_round_trip_is_bit_identical() {
    for seed in [5u64, 11] {
        let (trace, csv) = replayed_trace(seed);
        let cfg = central_cfg(seed);
        let policy = central::Policy::Srpt;

        let retained = central::run_source(
            ArrivalSource::from_shared(trace.clone()),
            &policy,
            &cfg,
            true,
        );
        let streamed = central::run_source(
            ArrivalSource::from_shared(trace.clone()),
            &policy,
            &cfg,
            false,
        );
        assert_eq!(
            retained.report, streamed.report,
            "seed {seed}: retain/stream reports drifted on replayed trace"
        );

        let again = Arc::new(parse_replay_csv(&csv).unwrap());
        let rerun = central::run_source(ArrivalSource::from_shared(again), &policy, &cfg, true);
        assert_eq!(
            retained.report, rerun.report,
            "seed {seed}: second ingest of the same CSV drifted"
        );
    }
}

/// Decentralized engine: the replayed trace runs bit-identically across
/// shard counts (the sharded PDES contract covers replay sources too)
/// and across retain/stream, under every policy.
#[test]
fn decentral_replay_round_trip_is_bit_identical_across_shards() {
    let (trace, _) = replayed_trace(5);
    for policy in [decentral::DecPolicy::Sparrow, decentral::DecPolicy::Hopper] {
        let base = decentral::run_source(
            ArrivalSource::from_shared(trace.clone()),
            policy,
            &decentral_cfg(5, 1),
            true,
        );
        for shards in [2usize, 3] {
            let sharded = decentral::run_source(
                ArrivalSource::from_shared(trace.clone()),
                policy,
                &decentral_cfg(5, shards),
                true,
            );
            assert_eq!(
                base.report,
                sharded.report,
                "{}: shards=1 vs shards={shards} drifted on replayed trace",
                policy.name()
            );
        }
        let streamed = decentral::run_source(
            ArrivalSource::from_shared(trace.clone()),
            policy,
            &decentral_cfg(5, 1),
            false,
        );
        assert_eq!(
            base.report,
            streamed.report,
            "{}: retain/stream drifted on replayed trace",
            policy.name()
        );
    }
}

/// Spec-level ingestion surfaces malformed rows with their 1-based line
/// number — the error a user sees from `replay=<path>` names the line.
#[test]
fn spec_replay_rejects_malformed_rows_with_line_numbers() {
    use hopper::experiment::ExperimentSpec;

    let path = std::env::temp_dir().join("hopper_replay_bad_rows.csv");
    std::fs::write(
        &path,
        "arrival_ms,tasks,work_ms,dag_len,beta\n0,4,1000\n5,0,1000\n",
    )
    .unwrap();

    let mut s = ExperimentSpec::central();
    s.replay = Some(path.display().to_string());
    let msg = s.run_one(1).err().expect("bad row must fail").to_string();
    assert!(
        msg.contains("line 3"),
        "error should carry the 1-based line number: {msg}"
    );
    std::fs::remove_file(&path).ok();
}
