//! Telemetry-plane contract tests.
//!
//! The windowed series is an *observer*: collecting it must never change
//! simulation results. These tests pin that invariant against the golden
//! file (every pinned policy, both engines), across shard counts, and
//! under the harshest fault planes; window sums must conserve the run's
//! totals (every completion, launch, kill, message, and event lands in
//! exactly one window).

mod common;

use std::fmt::Write as _;

use common::{assert_matches_goldens, central_cfg, decentral_cfg, jobs_digest, trace};
use hopper::central;
use hopper::cluster::DynamicsConfig;
use hopper::decentral;
use hopper::experiment::{EngineKind, ExperimentSpec};
use hopper::metrics::{RunReport, TelemetrySeries};

/// An odd window width so boundaries never align with scan periods,
/// handoffs, or round-number task durations.
const WINDOW_MS: u64 = 7_777;

/// Assert the series accounts for every countable the report totals:
/// each completion, launch, win, kill, message, and event falls in
/// exactly one window.
fn assert_conserves(series: &TelemetrySeries, report: &RunReport, events: u64, ctx: &str) {
    assert_eq!(
        series.total_completed(),
        report.digest.count(),
        "completions leaked across windows: {ctx}"
    );
    assert_eq!(series.total_events(), events, "events leaked: {ctx}");
    let sum = |f: fn(&hopper::metrics::TelemetryWindow) -> u64| -> u64 {
        series.windows.iter().map(f).sum()
    };
    assert_eq!(
        sum(|w| w.orig_launched),
        report.core.orig_launched,
        "orig launches leaked: {ctx}"
    );
    assert_eq!(
        sum(|w| w.spec_launched),
        report.core.spec_launched,
        "spec launches leaked: {ctx}"
    );
    assert_eq!(
        sum(|w| w.spec_won),
        report.core.spec_won,
        "spec wins leaked: {ctx}"
    );
    assert_eq!(
        sum(|w| w.messages),
        report.core.messages,
        "messages leaked: {ctx}"
    );
    // Per-window JCT digests partition the run's digest: counts and
    // total mass sum exactly.
    let jct_count: u64 = series.windows.iter().map(|w| w.jct.count()).sum();
    assert_eq!(jct_count, report.digest.count(), "JCT digest split: {ctx}");
    // Window indices are contiguous from 0.
    for (i, w) in series.windows.iter().enumerate() {
        assert_eq!(w.index, i as u64, "window index gap: {ctx}");
    }
}

/// Observer invariance, pinned against the golden file: re-render every
/// golden scenario with telemetry *enabled* and require the stats and
/// per-job digests to match `tests/goldens/stats.txt` line for line.
/// (The telemetry-off side is the golden suite itself — window 0 is the
/// default every golden run uses.)
#[test]
fn telemetry_on_matches_the_pinned_goldens() {
    let mut out = String::new();
    let central_policies: Vec<(&str, central::Policy)> = vec![
        ("fifo", central::Policy::Fifo),
        ("fair", central::Policy::Fair),
        ("srpt", central::Policy::Srpt),
        (
            "budgeted",
            central::Policy::BudgetedSrpt {
                budget_fraction: 0.2,
            },
        ),
        (
            "hopper",
            central::Policy::Hopper(central::HopperConfig::default()),
        ),
    ];
    for seed in [5u64, 11] {
        let t = trace(seed);
        for (name, policy) in &central_policies {
            let mut cfg = central_cfg(seed, DynamicsConfig::off());
            cfg.telemetry_window_ms = WINDOW_MS;
            let r = central::run(&t, policy, &cfg);
            let series = r.report.telemetry.as_ref().expect("series collected");
            assert_conserves(series, &r.report, r.stats.events, name);
            writeln!(
                out,
                "central/{name}/seed{seed}: jobs_digest={:#018x} stats={:?}",
                jobs_digest(&r.jobs),
                r.stats
            )
            .unwrap();
        }
        for policy in [
            decentral::DecPolicy::Sparrow,
            decentral::DecPolicy::SparrowSrpt,
            decentral::DecPolicy::Hopper,
        ] {
            let mut cfg = decentral_cfg(seed, DynamicsConfig::off());
            cfg.telemetry_window_ms = WINDOW_MS;
            let r = decentral::run(&t, policy, &cfg);
            let series = r.report.telemetry.as_ref().expect("series collected");
            assert_conserves(series, &r.report, r.stats.events, policy.name());
            writeln!(
                out,
                "decentral/{}/seed{seed}: jobs_digest={:#018x} stats={:?}",
                policy.name(),
                jobs_digest(&r.jobs),
                r.stats
            )
            .unwrap();
        }
    }
    assert_matches_goldens(&out, "telemetry_window_ms > 0");
}

/// Window 0 (the default) collects nothing; any positive width attaches
/// a series whose shape matches the run.
#[test]
fn window_zero_collects_nothing_and_positive_widths_attach_a_series() {
    let t = trace(5);
    let cfg = central_cfg(5, DynamicsConfig::off());
    let off = central::run(&t, &central::Policy::Srpt, &cfg);
    assert!(off.report.telemetry.is_none(), "window 0 must be inert");

    let mut cfg_on = central_cfg(5, DynamicsConfig::off());
    cfg_on.telemetry_window_ms = WINDOW_MS;
    let on = central::run(&t, &central::Policy::Srpt, &cfg_on);
    let series = on.report.telemetry.as_ref().expect("series collected");
    assert_eq!(series.window_ms, WINDOW_MS);
    assert_eq!(series.total_slots, 100, "25 machines x 4 slots");
    // The series spans at least the makespan (trailing scan-timer
    // events may extend it): finish() closes the last partial window,
    // so there are at least floor(makespan / W) + 1 windows.
    assert!(series.windows.len() as u64 > on.stats.core().makespan.as_millis() / WINDOW_MS);
    // Observer invariance, directly: everything but the series matches.
    assert_eq!(off.stats, on.stats);
    assert_eq!(off.jobs, on.jobs);
    assert_eq!(off.report.digest, on.report.digest);
    assert_eq!(off.report.live_high_water, on.report.live_high_water);
}

/// Sharded runs with telemetry on: stats stay bit-identical across shard
/// counts, and the *merged series* is too — counters and gauges sum over
/// disjoint shard-owned entities, JCT sketches union exactly.
#[test]
fn merged_series_is_bit_identical_across_shard_counts() {
    let t = trace(5);
    let mk = |shards: usize| {
        let mut cfg = decentral_cfg(5, DynamicsConfig::off());
        cfg.shards = shards;
        cfg.telemetry_window_ms = WINDOW_MS;
        decentral::run(&t, decentral::DecPolicy::Hopper, &cfg)
    };
    let one = mk(1);
    let four = mk(4);
    assert_eq!(one.stats, four.stats, "shard count changed the run");
    assert_eq!(one.jobs, four.jobs);
    let (s1, s4) = (
        one.report.telemetry.as_ref().expect("series @ shards=1"),
        four.report.telemetry.as_ref().expect("series @ shards=4"),
    );
    assert_eq!(s1, s4, "shard merge is not partition-invariant");
    assert_conserves(s1, &one.report, one.stats.events, "shards=1");
    // Merged capacity is the whole cluster, not one shard's slice.
    assert_eq!(s1.total_slots, 100, "50 machines x 2 slots");
}

/// Conservation under the dynamics plane: machine failures and
/// slowdowns relaunch tasks and kill copies mid-flight; every one of
/// those perturbed counters still lands in exactly one window.
#[test]
fn window_sums_conserve_under_failures() {
    for kind in [EngineKind::Central, EngineKind::Decentral] {
        let mut s = match kind {
            EngineKind::Central => ExperimentSpec::central(),
            EngineKind::Decentral => ExperimentSpec::decentral(),
        };
        s.jobs = 25;
        s.machines = 30;
        s.util = 0.7;
        s.hetero = "bimodal".into();
        s.slow_frac = 0.25;
        s.slow_factor = 0.4;
        s.slowdown_rate = 20.0;
        s.fail_rate = 10.0;
        s.mttr_ms = 5_000;
        s.telemetry_window_ms = WINDOW_MS;
        s.seeds = vec![7];
        let out = s.run_one(7).unwrap();
        let report = out.report();
        let series = report.telemetry.as_ref().expect("series collected");
        let ctx = format!("{}/failures", s.engine.as_str());
        assert_conserves(series, report, report.core.events, &ctx);
        assert_eq!(report.digest.count(), 25, "jobs lost under failures");
    }
}

/// Conservation through a 5% message-loss storm with jitter and
/// duplication: retries, lease expiries, and duplicate deliveries all
/// reshuffle the event stream, but window sums still account for every
/// message and completion.
#[test]
fn window_sums_conserve_under_a_message_loss_storm() {
    let mut s = ExperimentSpec::decentral();
    s.jobs = 25;
    s.machines = 30;
    s.util = 0.7;
    s.msg_loss = 0.05;
    s.msg_jitter_ms = 20;
    s.msg_dup = 0.02;
    s.telemetry_window_ms = WINDOW_MS;
    s.seeds = vec![3];
    let out = s.run_one(3).unwrap();
    let report = out.report();
    let series = report.telemetry.as_ref().expect("series collected");
    assert_conserves(series, report, report.core.events, "msg-loss storm");
    assert_eq!(report.digest.count(), 25, "jobs lost in the storm");
    assert!(
        report.core.messages > 0 && series.windows.iter().any(|w| w.messages > 0),
        "storm run sent no messages?"
    );
}

/// The streaming pipeline drives the same simulation through the same
/// collector: its series is bit-identical to the materialized run's.
#[test]
fn streaming_series_matches_materialized() {
    for kind in [EngineKind::Central, EngineKind::Decentral] {
        let mut s = match kind {
            EngineKind::Central => ExperimentSpec::central(),
            EngineKind::Decentral => ExperimentSpec::decentral(),
        };
        s.jobs = 20;
        s.machines = 30;
        s.util = 0.6;
        s.telemetry_window_ms = WINDOW_MS;
        s.seeds = vec![9];
        s.stream = false;
        let mat = s.run_one(9).unwrap();
        s.stream = true;
        let str = s.run_one(9).unwrap();
        assert_eq!(
            mat.report().telemetry,
            str.report().telemetry,
            "streaming changed the series: {}",
            s.engine.as_str()
        );
    }
}

/// Sweep CSVs are byte-identical with telemetry on or off: the series
/// rides on the trial's report and never reaches the CSV surface.
#[test]
fn sweep_csv_is_byte_identical_with_telemetry_on() {
    use hopper::experiment::{sweep_with_threads, SweepAxis};
    let mut s = ExperimentSpec::decentral();
    s.jobs = 10;
    s.machines = 30;
    s.util = 0.6;
    s.seeds = vec![1, 2];
    let axis = SweepAxis::new("policy", &["sparrow", "hopper"]);
    let off = sweep_with_threads(&s, &axis, 2).unwrap();
    s.telemetry_window_ms = WINDOW_MS;
    let on = sweep_with_threads(&s, &axis, 2).unwrap();
    assert_eq!(off.to_csv(), on.to_csv(), "telemetry leaked into the CSV");
    // And the telemetry-on sweep actually carried series on every trial.
    assert!(on.trials.iter().all(|t| t.report.telemetry.is_some()));
    assert!(off.trials.iter().all(|t| t.report.telemetry.is_none()));
}

/// Large-scale conservation: a long stream sliced into over a million
/// 1 ms windows still conserves every completion and event. Ignored by
/// default (hundreds of MB of window state in debug builds); CI runs it
/// in release via `cargo test --release --test telemetry -- --ignored`.
#[test]
#[ignore = "large; run in release via -- --ignored"]
fn million_window_sums_conserve() {
    let mut s = ExperimentSpec::decentral();
    s.jobs = 400;
    s.machines = 30;
    s.util = 0.7;
    s.stream = true;
    s.telemetry_window_ms = 1; // 1 ms windows: one per makespan millisecond
    s.seeds = vec![1];
    let out = s.run_one(1).unwrap();
    let report = out.report();
    let series = report.telemetry.as_ref().expect("series collected");
    assert!(
        series.windows.len() > 1_000_000,
        "stream too short for the 1M-window criterion: {} windows",
        series.windows.len()
    );
    assert_conserves(series, report, report.core.events, "1M windows");
    assert_eq!(report.digest.count(), 400);
}
