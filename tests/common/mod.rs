//! Scaffolding shared by the golden suites (`tests/golden_stats.rs` and
//! `tests/dynamics.rs`): the pinned scenario grid, the per-job digest,
//! and the stats renderer. One definition, so the dynamics-equivalence
//! check can never drift from the writer that produced
//! `tests/goldens/stats.txt`.

use std::fmt::Write as _;

use hopper::central;
use hopper::cluster::{ClusterConfig, DynamicsConfig};
use hopper::decentral;
use hopper::workload::{Trace, TraceGenerator, WorkloadProfile};

pub const GOLDEN_PATH: &str = "tests/goldens/stats.txt";

/// The pinned multi-phase interactive trace: exercises DAG eligibility,
/// shuffle transfers (α), locality, and speculation in one workload.
pub fn trace(seed: u64) -> Trace {
    let profile = WorkloadProfile::facebook().interactive();
    TraceGenerator::new(profile, 30, seed).generate_with_utilization(100, 0.7)
}

#[allow(dead_code)] // each suite uses its own subset of this module
pub fn central_cfg(seed: u64, dynamics: DynamicsConfig) -> central::SimConfig {
    central::SimConfig {
        cluster: ClusterConfig {
            machines: 25,
            slots_per_machine: 4,
            ..Default::default()
        },
        seed,
        dynamics,
        ..Default::default()
    }
}

pub fn decentral_cfg(seed: u64, dynamics: DynamicsConfig) -> decentral::DecConfig {
    decentral::DecConfig {
        cluster: ClusterConfig {
            machines: 50,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed,
        dynamics,
        ..Default::default()
    }
}

/// FNV-1a over the full per-job outcome tuple: any bit of drift in any
/// job's completion time changes the digest.
pub fn jobs_digest(jobs: &[hopper::metrics::JobResult]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for j in jobs {
        mix(j.job as u64);
        mix(j.size_tasks as u64);
        mix(j.dag_len as u64);
        mix(j.arrival.as_millis());
        mix(j.completed.as_millis());
    }
    h
}

/// Render every golden scenario's stats as stable text under the given
/// dynamics plane. `Debug` for the stats structs prints f64 fields with
/// shortest-roundtrip formatting, so two renders are equal iff the stats
/// are bit-identical.
#[allow(dead_code)] // each suite uses its own subset of this module
pub fn render_goldens(dynamics: &DynamicsConfig) -> String {
    let mut out = String::new();
    let central_policies: Vec<(&str, central::Policy)> = vec![
        ("fifo", central::Policy::Fifo),
        ("fair", central::Policy::Fair),
        ("srpt", central::Policy::Srpt),
        (
            "budgeted",
            central::Policy::BudgetedSrpt {
                budget_fraction: 0.2,
            },
        ),
        (
            "hopper",
            central::Policy::Hopper(central::HopperConfig::default()),
        ),
    ];
    for seed in [5u64, 11] {
        let t = trace(seed);
        for (name, policy) in &central_policies {
            let r = central::run(&t, policy, &central_cfg(seed, dynamics.clone()));
            writeln!(
                out,
                "central/{name}/seed{seed}: jobs_digest={:#018x} stats={:?}",
                jobs_digest(&r.jobs),
                r.stats
            )
            .unwrap();
        }
        for policy in [
            decentral::DecPolicy::Sparrow,
            decentral::DecPolicy::SparrowSrpt,
            decentral::DecPolicy::Hopper,
        ] {
            let r = decentral::run(&t, policy, &decentral_cfg(seed, dynamics.clone()));
            writeln!(
                out,
                "decentral/{}/seed{seed}: jobs_digest={:#018x} stats={:?}",
                policy.name(),
                jobs_digest(&r.jobs),
                r.stats
            )
            .unwrap();
        }
    }
    out
}

/// Render only the decentralized golden scenarios, with a caller hook to
/// adjust the config. The chaos suite uses this to prove that fault-plane
/// *hardening* knobs alone (timeouts, retry budgets) leave runs
/// bit-identical — only enabled fault sources may change a run.
#[allow(dead_code)]
pub fn render_decentral_goldens(mutate: impl Fn(&mut decentral::DecConfig)) -> String {
    let mut out = String::new();
    for seed in [5u64, 11] {
        let t = trace(seed);
        for policy in [
            decentral::DecPolicy::Sparrow,
            decentral::DecPolicy::SparrowSrpt,
            decentral::DecPolicy::Hopper,
        ] {
            let mut cfg = decentral_cfg(seed, DynamicsConfig::off());
            mutate(&mut cfg);
            let r = decentral::run(&t, policy, &cfg);
            writeln!(
                out,
                "decentral/{}/seed{seed}: jobs_digest={:#018x} stats={:?}",
                policy.name(),
                jobs_digest(&r.jobs),
                r.stats
            )
            .unwrap();
        }
    }
    out
}

/// The decentralized lines of the pinned golden file, in file order.
#[allow(dead_code)]
pub fn golden_decentral_lines() -> Vec<String> {
    std::fs::read_to_string(GOLDEN_PATH)
        .expect(
            "missing tests/goldens/stats.txt — run \
            `HOPPER_UPDATE_GOLDENS=1 cargo test --test golden_stats` once",
        )
        .lines()
        .filter(|l| l.starts_with("decentral/"))
        .map(str::to_owned)
        .collect()
}

/// Line-by-line comparison against the pinned golden file, with a
/// caller-supplied context string in the failure message.
#[allow(dead_code)] // each suite uses its own subset of this module
pub fn assert_matches_goldens(actual: &str, context: &str) {
    let expected = std::fs::read_to_string(GOLDEN_PATH).expect(
        "missing tests/goldens/stats.txt — run \
        `HOPPER_UPDATE_GOLDENS=1 cargo test --test golden_stats` once",
    );
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        assert_eq!(e, a, "golden line {} drifted ({context})", i + 1);
    }
    assert_eq!(
        expected.lines().count(),
        actual.lines().count(),
        "golden scenario count changed ({context})"
    );
}
