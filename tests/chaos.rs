//! Chaos suite for the message-fault plane: property-style storms of RPC
//! loss/jitter/duplication, scheduler crashes, and machine failures.
//!
//! Every storm runs with the dev-profile conservation auditor live (it
//! panics on any protocol violation, so "the test passed" means "no task
//! was lost or double-launched, no slot leaked, and every counter
//! reconciled across every event of every storm"). On top of that the
//! suite asserts the externally visible contract: every job completes,
//! per-seed stats are deterministic, and faults-off — including with
//! hardening knobs moved — reproduces the pinned goldens bit-identically.

mod common;

use hopper::cluster::{ClusterConfig, DynamicsConfig};
use hopper::decentral::{self, DecConfig, DecPolicy, FaultConfig};
use hopper::workload::{Trace, TraceGenerator, WorkloadProfile};

fn storm_trace(seed: u64, n: usize) -> Trace {
    let profile = WorkloadProfile::facebook()
        .interactive()
        .single_phase()
        .fixed_beta(1.5);
    TraceGenerator::new(profile, n, seed).generate_with_utilization(200, 0.7)
}

fn storm_cfg(seed: u64, faults: FaultConfig) -> DecConfig {
    DecConfig {
        cluster: ClusterConfig {
            machines: 100,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        num_schedulers: 5,
        seed,
        faults,
        ..Default::default()
    }
}

/// The full storm: the acceptance-criterion loss rate plus jitter,
/// duplication, and scheduler crashes.
fn full_storm() -> FaultConfig {
    FaultConfig {
        msg_loss: 0.05,
        msg_jitter_ms: 5,
        msg_dup: 0.02,
        sched_fail_rate_per_hour: 400.0,
        sched_mttr_ms: 1_500,
        rpc_timeout_ms: 1_000,
        rpc_retries: 3,
    }
}

/// Hardening knobs are not a fault source: cranking timeouts and retry
/// budgets while every injection rate stays zero must leave each pinned
/// decentralized golden bit-identical — no RNG draw, no timer event.
#[test]
fn hardening_knobs_alone_reproduce_goldens_bit_identically() {
    let rendered = common::render_decentral_goldens(|cfg| {
        cfg.faults.rpc_timeout_ms = 500;
        cfg.faults.rpc_retries = 9;
        cfg.faults.sched_mttr_ms = 1;
    });
    let expected = common::golden_decentral_lines();
    let actual: Vec<&str> = rendered.lines().collect();
    assert_eq!(
        actual.len(),
        expected.len(),
        "decentral golden scenario count"
    );
    for (i, (e, a)) in expected.iter().zip(&actual).enumerate() {
        assert_eq!(e, a, "decentral golden line {} drifted", i + 1);
    }
}

/// Message storms at the acceptance loss rate: every job completes under
/// every policy and seed, and the fault counters actually move (the storm
/// is not vacuous).
#[test]
fn message_storms_complete_every_job() {
    let faults = FaultConfig {
        sched_fail_rate_per_hour: 0.0,
        ..full_storm()
    };
    let mut lost = 0;
    let mut duplicated = 0;
    let mut recovered = 0;
    for seed in 1..=3u64 {
        let t = storm_trace(seed, 40);
        for policy in [
            DecPolicy::Sparrow,
            DecPolicy::SparrowSrpt,
            DecPolicy::Hopper,
        ] {
            let out = decentral::run(&t, policy, &storm_cfg(seed, faults));
            assert_eq!(out.jobs.len(), t.len(), "{} seed {seed}", policy.name());
            lost += out.stats.msgs_lost;
            duplicated += out.stats.msgs_duplicated;
            recovered += out.stats.timeouts_fired + out.stats.orphan_reclaimed;
        }
    }
    assert!(lost > 0, "storm lost no messages");
    assert!(duplicated > 0, "storm duplicated no messages");
    assert!(recovered > 0, "no timeout or lease ever fired");
}

/// Scheduler crash/recover chains: jobs owned by a crashed scheduler
/// survive the loss of its queue state and still complete.
#[test]
fn scheduler_crashes_lose_state_but_every_job_completes() {
    let faults = FaultConfig {
        msg_loss: 0.02,
        msg_jitter_ms: 2,
        msg_dup: 0.0,
        sched_fail_rate_per_hour: 400.0,
        sched_mttr_ms: 1_500,
        rpc_timeout_ms: 1_000,
        rpc_retries: 3,
    };
    let mut failovers = 0;
    for seed in 1..=3u64 {
        let t = storm_trace(seed + 10, 40);
        for policy in [DecPolicy::Sparrow, DecPolicy::Hopper] {
            let out = decentral::run(&t, policy, &storm_cfg(seed, faults));
            assert_eq!(out.jobs.len(), t.len(), "{} seed {seed}", policy.name());
            failovers += out.stats.sched_failovers;
        }
    }
    assert!(failovers > 0, "no scheduler ever crashed — storm vacuous");
}

/// The combined storm: message faults + scheduler crashes + machine
/// failures and slowdowns, at the acceptance-criterion loss rate.
#[test]
fn combined_storm_with_machine_failures_completes() {
    let dynamics = DynamicsConfig {
        slowdown_rate_per_hour: 60.0,
        fail_rate_per_hour: 30.0,
        recovery_ms: (2_500, 7_500),
        ..DynamicsConfig::off()
    };
    for seed in 1..=2u64 {
        let t = storm_trace(seed + 20, 35);
        for policy in [DecPolicy::Sparrow, DecPolicy::Hopper] {
            let mut cfg = storm_cfg(seed, full_storm());
            cfg.dynamics = dynamics.clone();
            let out = decentral::run(&t, policy, &cfg);
            assert_eq!(out.jobs.len(), t.len(), "{} seed {seed}", policy.name());
        }
    }
}

/// Storms are seeded: the same seed reproduces the exact stats, fault
/// fates, and per-job completion digest; a different seed does not.
#[test]
fn storms_are_deterministic_per_seed() {
    let t = storm_trace(7, 40);
    let run = |seed: u64| decentral::run(&t, DecPolicy::Hopper, &storm_cfg(seed, full_storm()));
    let a = run(9);
    let b = run(9);
    assert_eq!(a.stats, b.stats, "same seed must reproduce stats exactly");
    assert_eq!(
        common::jobs_digest(&a.jobs),
        common::jobs_digest(&b.jobs),
        "same seed must reproduce every completion time"
    );
    let c = run(10);
    assert_ne!(
        common::jobs_digest(&a.jobs),
        common::jobs_digest(&c.jobs),
        "different seed should draw different fault fates"
    );
}
