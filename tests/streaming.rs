//! Streaming-pipeline equivalence and retirement tests.
//!
//! The streaming pipeline (lazy `TraceStream` arrivals, job retirement,
//! digest-only metrics) must change *memory*, never *results*:
//!
//! - same seed ⇒ identical `CoreStats` and identical digests (the mean
//!   is an exact integer sum, so it matches bit-for-bit) on both
//!   engines;
//! - streaming percentiles come from the ε-approximate sketch and must
//!   sit within ε of the exact order statistics of the materialized run;
//! - retirement keeps the live-job high-water mark a small fraction of
//!   total jobs on a long arrival stream.
//!
//! The million-job scale point runs in release mode (`cargo bench
//! --bench fig_scale`, asserted there and in the CI streaming smoke);
//! these tests pin the same invariants at dev-profile-feasible sizes
//! with every `debug_assert!` oracle live.

use hopper::experiment::{EngineKind, ExperimentSpec};
use hopper::workload::{Dist, TraceGenerator, WorkloadProfile};

/// A small spec that exercises DAGs, speculation, and both regimes.
fn spec(kind: EngineKind, policy: &str, jobs: usize) -> ExperimentSpec {
    let mut s = match kind {
        EngineKind::Central => {
            let mut s = ExperimentSpec::central();
            s.machines = 25;
            s.slots = 4;
            s
        }
        EngineKind::Decentral => {
            let mut s = ExperimentSpec::decentral();
            s.machines = 50;
            s
        }
    };
    s.policy = policy.into();
    s.interactive = true;
    s.jobs = jobs;
    s.util = 0.7;
    s
}

/// Exact order statistic at the sketch's rank rule (⌈p·(n−1)⌉).
fn exact_rank_ms(mut durs: Vec<u64>, p: f64) -> f64 {
    durs.sort_unstable();
    let rank = (p * (durs.len() - 1) as f64).ceil() as usize;
    durs[rank] as f64
}

fn assert_stream_matches_materialized(kind: EngineKind, policy: &str, seed: u64) {
    let mut s = spec(kind, policy, 40);
    s.stream = false;
    let mat = s.run_one(seed).unwrap();
    s.stream = true;
    let str = s.run_one(seed).unwrap();
    let ctx = format!("{}/{policy}/seed{seed}", s.engine.as_str());

    // Identical simulation: counters and digests match exactly (the
    // digest's mean is integer math, so "identical mean" is bit-level).
    assert_eq!(
        mat.report().core,
        str.report().core,
        "CoreStats drifted: {ctx}"
    );
    assert_eq!(
        mat.report().digest,
        str.report().digest,
        "digest drifted: {ctx}"
    );
    assert_eq!(
        mat.report().digest.mean_ms().to_bits(),
        str.report().digest.mean_ms().to_bits(),
        "mean drifted: {ctx}"
    );
    assert!(str.jobs().is_empty(), "streaming retained jobs: {ctx}");
    assert_eq!(
        mat.jobs().len() as u64,
        str.report().digest.count(),
        "job count drifted: {ctx}"
    );

    // Sketch percentiles within ε of the exact order statistics.
    let durs: Vec<u64> = mat.jobs().iter().map(|r| r.duration_ms()).collect();
    let eps = str.report().digest.eps();
    for p in [0.1, 0.5, 0.9, 1.0] {
        let exact = exact_rank_ms(durs.clone(), p);
        let approx = str.percentile_duration_ms(p);
        assert!(
            (approx - exact).abs() <= eps * exact + 1e-9,
            "{ctx}: p{p} sketch {approx} vs exact {exact} (ε={eps})"
        );
    }

    // Retirement ran: the high-water mark never reached the whole trace.
    assert!(
        str.report().live_high_water <= mat.jobs().len(),
        "high-water above total: {ctx}"
    );
    assert!(
        str.report().live_high_water >= 1,
        "nothing was ever live: {ctx}"
    );
}

#[test]
fn streaming_equals_materialized_central() {
    for policy in ["hopper", "srpt"] {
        for seed in [5u64, 11] {
            assert_stream_matches_materialized(EngineKind::Central, policy, seed);
        }
    }
}

#[test]
fn streaming_equals_materialized_decentral() {
    for policy in ["hopper", "sparrow", "sparrow-srpt"] {
        for seed in [5u64, 11] {
            assert_stream_matches_materialized(EngineKind::Decentral, policy, seed);
        }
    }
}

#[test]
fn streaming_equals_materialized_under_dynamics() {
    // Machine failures and slowdowns are the paths most likely to touch
    // a retired job (stale in-flight messages, incarnation mismatches):
    // the equivalence must survive them, with the slab's
    // touch-a-retired-job panic live the whole run.
    for kind in [EngineKind::Central, EngineKind::Decentral] {
        let mut s = spec(kind, "hopper", 30);
        s.hetero = "bimodal".into();
        s.slow_frac = 0.25;
        s.slow_factor = 0.4;
        s.slowdown_rate = 20.0;
        s.fail_rate = 10.0;
        s.mttr_ms = 5_000;
        s.stream = false;
        let mat = s.run_one(7).unwrap();
        s.stream = true;
        let str = s.run_one(7).unwrap();
        assert_eq!(mat.report().core, str.report().core, "{:?}", kind);
        assert_eq!(mat.report().digest, str.report().digest, "{:?}", kind);
    }
}

#[test]
fn max_jobs_caps_the_stream_identically_in_both_modes() {
    let mut s = spec(EngineKind::Decentral, "hopper", 60);
    s.max_jobs = Some(20);
    s.stream = false;
    let mat = s.run_one(3).unwrap();
    assert_eq!(mat.jobs().len(), 20);
    s.stream = true;
    let str = s.run_one(3).unwrap();
    assert_eq!(str.report().digest.count(), 20);
    assert_eq!(mat.report().core, str.report().core);
    assert_eq!(mat.report().digest, str.report().digest);
}

/// Long-run retirement: the live-job high-water mark stays a small
/// fraction of total jobs. Small jobs keep the dev-profile run fast
/// while making the stream long relative to the active set — the same
/// shape `fig_scale` pushes to a million jobs in release mode (where
/// the bound asserted is the acceptance criterion's 5%).
#[test]
fn retirement_bounds_live_jobs_on_a_long_run() {
    let mut profile = WorkloadProfile::facebook().interactive().single_phase();
    profile.job_size = Dist::Uniform { lo: 2.0, hi: 6.0 };
    let total = 1_200;
    let stream = TraceGenerator::new(profile, total, 1).stream_with_utilization(200, 0.7);
    let cfg = hopper::decentral::DecConfig {
        cluster: hopper::cluster::ClusterConfig {
            machines: 100,
            slots_per_machine: 2,
            handoff_ms: 0,
            ..Default::default()
        },
        seed: 1,
        ..Default::default()
    };
    let out = hopper::decentral::run_stream(stream, hopper::decentral::DecPolicy::Hopper, &cfg);
    assert_eq!(
        out.report.digest.count() as usize,
        total,
        "all jobs completed"
    );
    assert!(
        out.report.live_high_water * 10 < total,
        "live-job high-water {} is not ≪ {total} total jobs",
        out.report.live_high_water
    );
}

/// Same bound on the centralized engine's streaming path.
#[test]
fn central_streaming_also_retires() {
    let mut profile = WorkloadProfile::facebook().interactive().single_phase();
    profile.job_size = Dist::Uniform { lo: 2.0, hi: 6.0 };
    let total = 600;
    let stream = TraceGenerator::new(profile, total, 2).stream_with_utilization(100, 0.7);
    let cfg = hopper::central::SimConfig {
        cluster: hopper::cluster::ClusterConfig {
            machines: 25,
            slots_per_machine: 4,
            ..Default::default()
        },
        seed: 2,
        ..Default::default()
    };
    let out = hopper::central::run_stream(
        stream,
        &hopper::central::Policy::Hopper(hopper::central::HopperConfig::default()),
        &cfg,
    );
    assert_eq!(out.report.digest.count() as usize, total);
    assert!(
        out.report.live_high_water * 5 < total,
        "live-job high-water {} is not ≪ {total} total jobs",
        out.report.live_high_water
    );
}
