//! Integration tests for the cluster-dynamics plane (machine speed
//! heterogeneity, transient slowdowns, failures).
//!
//! Three invariants, mirroring DESIGN.md "Cluster dynamics":
//!
//! 1. **Neutral-enabled equivalence.** With the dynamics plane *enabled
//!    but degenerate* (every speed 1.0, no incidents), every golden
//!    scenario reproduces `tests/goldens/stats.txt` bit-identically —
//!    the speed-scaled launch path and reschedule-staleness checks must
//!    be exact no-ops at speed 1.0. (Dynamics *off* is covered by the
//!    unchanged `tests/golden_stats.rs`; both suites share the renderer
//!    in `tests/common/mod.rs`, so they cannot drift apart.)
//! 2. **Parallel determinism.** A dynamics-enabled sweep is bit-identical
//!    across 1, 2, and 4 worker threads: each machine's incident stream
//!    lives in its own seed-derived RNG, so trials stay pure functions of
//!    `(spec, seed)`.
//! 3. **The paper's thesis under machine-level stragglers.** Raising the
//!    slow-node fraction degrades every policy monotonically, and the
//!    speculation-coordinating policy (Hopper) degrades *less* than the
//!    speculation-unaware baseline (Sparrow).

mod common;

use hopper::cluster::{DynamicsConfig, HeteroProfile};
use hopper::experiment::{sweep_serial, sweep_with_threads, ExperimentSpec, SweepAxis};

/// A dynamics plane that is enabled (so every speed lookup, launch-time
/// division, and staleness check runs) yet numerically neutral: all base
/// speeds are the degenerate draw 1.0 and both incident rates are zero.
fn neutral_enabled() -> DynamicsConfig {
    let d = DynamicsConfig {
        hetero: HeteroProfile::Uniform { lo: 1.0, hi: 1.0 },
        ..DynamicsConfig::off()
    };
    assert!(d.enabled());
    d
}

/// `hetero` enabled at the degenerate speed-1.0 point must reproduce the
/// pinned goldens bit-for-bit, for every pinned policy of both engines.
#[test]
fn neutral_enabled_dynamics_reproduce_goldens_bit_identically() {
    let actual = common::render_goldens(&neutral_enabled());
    common::assert_matches_goldens(&actual, "under neutral-enabled dynamics");
}

// ---- parallel determinism of a dynamics-enabled sweep ----

fn dynamic_spec(engine_decentral: bool) -> ExperimentSpec {
    let mut s = if engine_decentral {
        let mut s = ExperimentSpec::decentral();
        s.machines = 40;
        s
    } else {
        let mut s = ExperimentSpec::central();
        s.machines = 12;
        s.slots = 4;
        s
    };
    s.jobs = 10;
    s.interactive = true;
    s.single_phase = true;
    s.util = 0.6;
    s.hetero = "bimodal".into();
    s.slow_factor = 0.4;
    s.slowdown_rate = 30.0; // aggressive, so slowdowns actually fire
    s.fail_rate = 10.0; // and so do failures
    s.mttr_ms = 5_000;
    s.seeds = vec![1, 2, 3];
    s
}

/// Sweeping the new `slow_frac` axis with slowdowns *and* failures active
/// is bit-identical across 1, 2, and 4 worker threads.
#[test]
fn dynamics_enabled_sweep_is_identical_across_thread_counts() {
    for engine_decentral in [false, true] {
        let spec = dynamic_spec(engine_decentral);
        let axis = SweepAxis::new("slow_frac", &[0.0, 0.3]);
        let serial = sweep_serial(&spec, &axis).expect("serial sweep");
        for threads in [1, 2, 4] {
            let parallel = sweep_with_threads(&spec, &axis, threads).expect("parallel sweep");
            assert_eq!(
                serial, parallel,
                "dynamics sweep diverged at {threads} threads (decentral={engine_decentral})"
            );
        }
        assert_eq!(serial.trials.len(), 6, "2 axis values × 3 seeds");
    }
}

/// Failures actually fire, requeue work, and every job still completes —
/// on both engines. Re-dispatched originals relaunch, so the original
/// launch counter exceeds the task count.
#[test]
fn machine_failures_requeue_work_and_all_jobs_complete() {
    for engine_decentral in [false, true] {
        let mut spec = dynamic_spec(engine_decentral);
        spec.slowdown_rate = 0.0;
        spec.fail_rate = 60.0; // ~one failure per machine-minute
        let mut saw_relaunch = false;
        for &seed in &spec.seeds.clone() {
            let t = spec.trace(seed);
            let tasks: u64 = t.jobs.iter().map(|j| j.num_tasks() as u64).sum();
            let out = spec.run_one(seed).expect("run");
            assert_eq!(
                out.jobs().len(),
                t.len(),
                "jobs lost (decentral={engine_decentral}, seed {seed})"
            );
            if out.report().core.orig_launched > tasks {
                saw_relaunch = true;
            }
        }
        assert!(
            saw_relaunch,
            "no failure ever forced a re-dispatch (decentral={engine_decentral})"
        );
    }
}

// ---- the thesis: machine-level stragglers, speculation absorbs them ----

fn mean_jct_at(policy: &str, slow_frac: f64) -> f64 {
    let mut s = ExperimentSpec::decentral();
    s.policy = policy.into();
    s.jobs = 40;
    s.machines = 60;
    s.interactive = true;
    s.single_phase = true;
    s.util = 0.7;
    s.hetero = "bimodal".into();
    s.slow_factor = 0.3;
    s.slow_frac = slow_frac;
    s.seeds = vec![1, 2, 3, 4];
    let axis = SweepAxis::new("policy", &[policy]);
    sweep_with_threads(&s, &axis, 2)
        .expect("sweep")
        .mean_for(policy)
}

/// Raising the slow-node fraction degrades the speculation-unaware
/// baseline (Sparrow) monotonically; Hopper, which coordinates
/// speculation with scheduling, degrades strictly less in relative
/// terms. Deterministic: fixed seeds, fixed grid.
#[test]
fn slow_nodes_degrade_sparrow_monotonically_and_hopper_less() {
    let fracs = [0.0, 0.2, 0.4];
    let sparrow: Vec<f64> = fracs.iter().map(|&f| mean_jct_at("sparrow", f)).collect();
    let hopper: Vec<f64> = fracs.iter().map(|&f| mean_jct_at("hopper", f)).collect();
    // Monotone degradation for the speculation-unaware baseline.
    assert!(
        sparrow[0] < sparrow[1] && sparrow[1] < sparrow[2],
        "sparrow not monotone over slow_frac: {sparrow:?}"
    );
    // Hopper also suffers (machine stragglers hit everyone) ...
    assert!(
        hopper[2] > hopper[0],
        "hopper unaffected by slow nodes? {hopper:?}"
    );
    // ... but absorbs them better: smaller relative degradation and a
    // better absolute JCT at the worst point.
    let sparrow_blowup = sparrow[2] / sparrow[0];
    let hopper_blowup = hopper[2] / hopper[0];
    assert!(
        hopper_blowup < sparrow_blowup,
        "hopper blowup {hopper_blowup:.2}x should beat sparrow {sparrow_blowup:.2}x"
    );
    assert!(
        hopper[2] < sparrow[2],
        "hopper {:.0} should beat sparrow {:.0} at slow_frac=0.4",
        hopper[2],
        sparrow[2]
    );
}

/// Transient slowdowns alone (no failures, no static heterogeneity)
/// stretch in-flight work deterministically: two runs are identical, and
/// the run is slower than the undisturbed cluster.
#[test]
fn transient_slowdowns_are_deterministic_and_costly() {
    let mut spec = dynamic_spec(true);
    spec.hetero = "off".into();
    spec.fail_rate = 0.0;
    spec.slowdown_rate = 60.0;
    spec.seeds = vec![7];
    let a = spec.run_one(7).expect("run a");
    let b = spec.run_one(7).expect("run b");
    assert_eq!(a.jobs(), b.jobs());
    assert_eq!(a.report().core, b.report().core);

    let mut calm = spec.clone();
    calm.slowdown_rate = 0.0;
    assert!(!calm.dynamics().enabled());
    let c = calm.run_one(7).expect("calm run");
    assert!(
        a.mean_duration_ms() > c.mean_duration_ms(),
        "slowdowns should cost JCT: {} vs calm {}",
        a.mean_duration_ms(),
        c.mean_duration_ms()
    );
}
