//! Driver-level tests for the incremental central allocator (ISSUE 6):
//! cache behaviour under machine fail/recover dynamics, and the bounded-
//! staleness (`realloc_drift`) mode.
//!
//! These run in the dev profile, where the central driver shadow-checks
//! every reallocation against the eager `hopper_core::allocate` — so any
//! scenario exercised here *also* re-proves incremental ≡ eager along its
//! whole event sequence, including the fail/recover paths.

use hopper::central::{self, HopperConfig, Policy, SimConfig};
use hopper::cluster::{ClusterConfig, DynamicsConfig};
use hopper::experiment::{EngineKind, ExperimentSpec};
use hopper::sim::SimTime;
use hopper::workload::{Trace, TraceGenerator, WorkloadProfile};

fn trace(seed: u64, jobs: usize) -> Trace {
    let profile = WorkloadProfile::facebook().interactive();
    TraceGenerator::new(profile, jobs, seed).generate_with_utilization(100, 0.7)
}

fn cfg(seed: u64, dynamics: DynamicsConfig) -> SimConfig {
    SimConfig {
        cluster: ClusterConfig {
            machines: 25,
            slots_per_machine: 4,
            ..Default::default()
        },
        scan_interval: SimTime::from_millis(1000),
        seed,
        dynamics,
        ..Default::default()
    }
}

/// Fail/recover-heavy dynamics with neutral speeds: the only incidents
/// are machine failures and recoveries.
fn failures() -> DynamicsConfig {
    DynamicsConfig {
        fail_rate_per_hour: 40.0,
        recovery_ms: (2_000, 10_000),
        ..DynamicsConfig::off()
    }
}

/// `DynEvent::Fail` / `DynEvent::Recover` change no input of `allocate`
/// (killed tasks return to *pending*; capacity is the configured total),
/// so they must not trash the allocation cache: even on a run dense with
/// failures and recoveries, some dispatches still reuse the previous
/// allocation outright, and reallocations stay well below the event
/// count. Before the epoch-invalidation fix, every incident bumped the
/// demand epoch and cache reuse collapsed to zero on runs like this one.
#[test]
fn fail_recover_events_do_not_trash_the_alloc_cache() {
    let t = trace(9, 40);
    let out = central::run(
        &t,
        &Policy::Hopper(HopperConfig::default()),
        &cfg(9, failures()),
    );
    assert_eq!(out.jobs.len(), 40, "all jobs completed under failures");
    assert!(
        out.stats.killed > 0,
        "scenario too tame: no copy ever died with a machine"
    );
    let c = out.alloc_counters;
    assert!(
        c.reuses > 0,
        "no dispatch ever reused the cached allocation: {c:?}"
    );
    assert!(
        c.recomputes < out.stats.events,
        "allocation recomputed on (at least) every event: {c:?} vs {} events",
        out.stats.events
    );
    assert_eq!(c.stale_skips, 0, "exact mode must never skip stale");
}

/// Bounded staleness: with `realloc_drift > 0` the driver keeps a stale
/// allocation while the total virtual size stays within the budget.
/// The schedule may differ from the eager one, but every job still
/// completes, skips actually happen, and reallocation count drops
/// strictly below the exact run's.
#[test]
fn bounded_staleness_skips_reallocations_and_still_completes() {
    let t = trace(3, 60);
    let exact = central::run(
        &t,
        &Policy::Hopper(HopperConfig::default()),
        &cfg(3, DynamicsConfig::off()),
    );
    let drifty = central::run(
        &t,
        &Policy::Hopper(HopperConfig {
            realloc_drift: 0.05,
            ..Default::default()
        }),
        &cfg(3, DynamicsConfig::off()),
    );
    assert_eq!(drifty.jobs.len(), 60, "all jobs completed under drift");
    assert!(
        drifty.alloc_counters.stale_skips > 0,
        "drift mode never skipped: {:?}",
        drifty.alloc_counters
    );
    assert!(
        drifty.alloc_counters.recomputes < exact.alloc_counters.recomputes,
        "drift did not reduce reallocations: {:?} vs exact {:?}",
        drifty.alloc_counters,
        exact.alloc_counters
    );
    // Staleness trades exactness for speed, not for a broken schedule:
    // mean job duration stays in the same regime as the eager run.
    let (me, md) = (exact.mean_duration_ms(), drifty.mean_duration_ms());
    assert!(
        md <= 1.5 * me,
        "drift wrecked mean duration: {md} vs exact {me}"
    );
}

/// `realloc_drift = 0` must be the exact eager path: byte-identical
/// per-job outcomes and stats to a run with the default config (which is
/// drift 0), and zero stale skips — pinning that the drift machinery is
/// inert unless explicitly enabled.
#[test]
fn drift_zero_is_inert() {
    let t = trace(5, 30);
    let base = central::run(
        &t,
        &Policy::Hopper(HopperConfig::default()),
        &cfg(5, DynamicsConfig::off()),
    );
    let zero = central::run(
        &t,
        &Policy::Hopper(HopperConfig {
            realloc_drift: 0.0,
            ..Default::default()
        }),
        &cfg(5, DynamicsConfig::off()),
    );
    assert_eq!(base.jobs, zero.jobs);
    assert_eq!(base.stats, zero.stats);
    assert_eq!(base.alloc_counters, zero.alloc_counters);
    assert_eq!(zero.alloc_counters.stale_skips, 0);
}

/// The spec key `realloc_drift=` is sweepable and streaming-safe: a
/// drift-enabled run gives bit-identical counters and digests between
/// the materialized and streaming pipelines (staleness changes *which*
/// schedule is computed, never the equivalence of the two pipelines).
#[test]
fn streaming_equals_materialized_with_drift() {
    let mut s = ExperimentSpec::central();
    s.machines = 25;
    s.slots = 4;
    s.policy = "hopper".into();
    s.interactive = true;
    s.jobs = 40;
    s.util = 0.7;
    s.set("realloc_drift", "0.05").unwrap();
    assert_eq!(s.engine, EngineKind::Central);
    for seed in [5u64, 11] {
        s.stream = false;
        let mat = s.run_one(seed).unwrap();
        s.stream = true;
        let str = s.run_one(seed).unwrap();
        assert_eq!(
            mat.report().core,
            str.report().core,
            "CoreStats drifted: seed{seed}"
        );
        assert_eq!(
            mat.report().digest,
            str.report().digest,
            "digest drifted: seed{seed}"
        );
        assert_eq!(mat.jobs().len() as u64, str.report().digest.count());
    }
}
