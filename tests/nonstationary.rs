//! Property suite for the non-stationary workload plane
//! (`hopper_workload::RateProfile`):
//!
//! - diurnal calibration stays honest — the measured offered
//!   utilization hits the target time-average across seeds and targets;
//! - `RateProfile::constant()` is byte-identical to the legacy
//!   generator path (same jobs, same arrival times, bit for bit);
//! - burst injection is deterministic per seed, leaves job bodies
//!   untouched, and its peak-rate effect grows (empirically
//!   monotonically) with the burst multiplier.

use hopper::workload::{export_replay_csv, RateProfile, Trace, TraceGenerator, WorkloadProfile};
use proptest::prelude::*;

fn generator(jobs: usize, seed: u64) -> TraceGenerator {
    let profile = WorkloadProfile::facebook().interactive().single_phase();
    TraceGenerator::new(profile, jobs, seed)
}

/// Largest number of arrivals inside any sliding window of `len_ms`,
/// the empirical peak-rate gauge for the burst tests.
fn peak_window_arrivals(trace: &Trace, len_ms: u64) -> usize {
    let at: Vec<u64> = trace.jobs.iter().map(|j| j.arrival.as_millis()).collect();
    let mut best = 0;
    let mut lo = 0;
    for hi in 0..at.len() {
        while at[hi] - at[lo] > len_ms {
            lo += 1;
        }
        best = best.max(hi - lo + 1);
    }
    best
}

proptest! {
    /// The diurnal curve's time-average is 1, so the calibrated target
    /// utilization survives the modulation: the measured offered load
    /// stays as close to the target as the stationary generator's own
    /// tolerance (the last-arrival jitter dominates both).
    #[test]
    fn diurnal_calibration_hits_the_target(seed in 0u64..1_000, util in 0.55f64..0.95) {
        let g = generator(250, seed);
        let t = g.generate_with_profile(300, util, &RateProfile::diurnal(0));
        let measured = t.offered_utilization(300);
        prop_assert!(
            (measured - util).abs() / util < 0.35,
            "seed {seed}: diurnal offered {measured:.3} vs target {util:.3}"
        );
    }

    /// `rate_profile=constant` is the legacy path, not a near-copy of
    /// it: the streamed jobs and arrival times are bit-identical to
    /// `generate_with_utilization`, and so is the exported CSV.
    #[test]
    fn constant_profile_is_byte_identical_to_legacy(seed in 0u64..1_000) {
        let g = generator(60, seed);
        let legacy = g.generate_with_utilization(200, 0.8);
        let profiled = g.generate_with_profile(200, 0.8, &RateProfile::constant());
        prop_assert_eq!(
            format!("{:?}", legacy.jobs),
            format!("{:?}", profiled.jobs),
            "constant profile diverged from the legacy generator"
        );
        prop_assert_eq!(export_replay_csv(&legacy), export_replay_csv(&profiled));
    }

    /// Burst injection re-times arrivals but never touches job bodies,
    /// and the empirical peak arrival rate grows with the burst
    /// multiplier: window placement is seed-only (independent of
    /// `mult`), so a hotter multiplier compresses the same windows
    /// harder. Burst length and frequency are sized to the ~100 s span
    /// of this trace (≈ 5 expected windows, ≈ 20% of the timeline) so
    /// the peak gauge has both bursts to see and off-burst contrast.
    #[test]
    fn burst_mult_is_empirically_monotone(seed in 0u64..300) {
        let g = generator(400, seed);
        let len_ms = 3_000;
        let peaks: Vec<usize> = [1.0, 4.0, 16.0]
            .iter()
            .map(|&mult| {
                let rate = RateProfile::constant().with_bursts(240.0, mult, len_ms);
                let t = g.generate_with_profile(300, 0.8, &rate);
                peak_window_arrivals(&t, len_ms)
            })
            .collect();
        prop_assert!(
            peaks[0] <= peaks[1] && peaks[1] <= peaks[2],
            "seed {seed}: peak arrivals not monotone in burst_mult: {peaks:?}"
        );
    }
}

#[test]
fn bursts_are_deterministic_per_seed_and_preserve_job_bodies() {
    let rate = RateProfile::diurnal(0).with_bursts(6.0, 4.0, 60_000);
    let a = generator(120, 42).generate_with_profile(300, 0.8, &rate);
    let b = generator(120, 42).generate_with_profile(300, 0.8, &rate);
    assert_eq!(
        format!("{:?}", a.jobs),
        format!("{:?}", b.jobs),
        "same seed, same profile must replay identically"
    );

    // A different seed moves the burst windows (and the gaps), but the
    // job bodies are drawn from per-job child RNGs and never shift.
    let c = generator(120, 43).generate_with_profile(300, 0.8, &rate);
    assert_ne!(
        format!("{:?}", a.jobs),
        format!("{:?}", c.jobs),
        "different seed should re-place burst windows"
    );

    // Bursts only re-time arrivals: job bodies match the constant
    // profile's bit for bit (same phases, same works, same betas).
    let plain = generator(120, 42).generate_with_profile(300, 0.8, &RateProfile::constant());
    for (x, y) in a.jobs.iter().zip(&plain.jobs) {
        assert_eq!(format!("{:?}", x.phases), format!("{:?}", y.phases));
        assert_eq!(x.beta.to_bits(), y.beta.to_bits());
    }
}
