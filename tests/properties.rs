//! Property-based tests (proptest) on the core invariants.

use hopper::core::{allocate, AllocConfig, FreeSlotEpisode, JobDemand, Reservation, WorkerAction};
use hopper::metrics::percentile;
use hopper::sim::{rng_from_seed, EventQueue, SimTime};
use hopper::workload::Dist;
use proptest::prelude::*;

fn demand_strategy() -> impl Strategy<Value = JobDemand> {
    (
        0usize..50,
        0.0f64..2000.0,
        0.0f64..500.0,
        0.05f64..20.0,
        1.05f64..2.5,
        0.1f64..4.0,
    )
        .prop_map(|(job, rem, down, alpha, beta, weight)| JobDemand {
            job,
            remaining_tasks: rem,
            downstream_tasks: down,
            alpha,
            beta,
            weight,
        })
}

proptest! {
    /// Allocation never exceeds capacity, for any demand set and any ε.
    #[test]
    fn allocation_respects_capacity(
        demands in prop::collection::vec(demand_strategy(), 0..40),
        capacity in 0usize..5000,
        eps in 0.0f64..=1.0,
    ) {
        let cfg = AllocConfig { fairness_eps: eps, ..Default::default() };
        let allocs = allocate(&demands, capacity, &cfg);
        let total: usize = allocs.iter().map(|a| a.slots).sum();
        prop_assert!(total <= capacity, "total {total} > capacity {capacity}");
        prop_assert_eq!(allocs.len(), demands.len());
        // Output order matches input order.
        for (a, d) in allocs.iter().zip(&demands) {
            prop_assert_eq!(a.job, d.job);
        }
    }

    /// With ε-fairness on, every job gets at least its floor
    /// min((1−ε)·S·w/Σw − 1, ⌈V⌉, cap) slots (−1 absorbs integer floors).
    #[test]
    fn fairness_floor_holds(
        demands in prop::collection::vec(demand_strategy(), 1..30),
        capacity in 1usize..2000,
        eps in 0.0f64..0.9,
    ) {
        let cfg = AllocConfig { fairness_eps: eps, ..Default::default() };
        let allocs = allocate(&demands, capacity, &cfg);
        let total_w: f64 = demands.iter().map(|d| d.weight).sum();
        // Floors are trimmed only when their sum exceeds capacity; skip
        // that regime (it is exercised by the capacity property anyway).
        let floor_sum: f64 = demands
            .iter()
            .map(|d| ((1.0 - eps) * capacity as f64 * d.weight / total_w).floor())
            .sum();
        prop_assume!(floor_sum <= capacity as f64);
        for (a, d) in allocs.iter().zip(&demands) {
            let fair = capacity as f64 * d.weight / total_w;
            let floor = ((1.0 - eps) * fair).floor();
            let cap = (d.remaining_tasks * cfg.max_useful_factor).ceil();
            let entitled = floor.min(d.virtual_size().ceil()).min(cap);
            prop_assert!(
                a.slots as f64 >= entitled - 1.0,
                "job {} got {} slots, entitled to {entitled}",
                d.job, a.slots
            );
        }
    }

    /// Allocation is work-conserving in the constrained regime: if demand
    /// exceeds capacity (ΣV > S) the allocator hands out every slot.
    #[test]
    fn constrained_regime_is_work_conserving(
        demands in prop::collection::vec(demand_strategy(), 1..30),
        capacity in 1usize..1000,
    ) {
        let total_v: f64 = demands.iter().map(|d| d.virtual_size()).sum();
        prop_assume!(total_v > capacity as f64 * 1.5);
        // Also require the *useful* demand (caps) to cover capacity.
        let cfg = AllocConfig::no_fairness();
        let total_cap: f64 = demands
            .iter()
            .map(|d| (d.remaining_tasks * cfg.max_useful_factor).ceil())
            .sum();
        prop_assume!(total_cap >= capacity as f64);
        let allocs = allocate(&demands, capacity, &cfg);
        let total: usize = allocs.iter().map(|a| a.slots).sum();
        prop_assert!(
            total >= capacity.saturating_sub(demands.len()),
            "left {} slots unallocated under overload",
            capacity - total
        );
    }

    /// Jobs with no remaining work (zero remaining and downstream tasks)
    /// receive zero slots in either regime: the fairness floor is capped by
    /// ⌈V⌉ = 0 and the useful-slots cap is 0.
    #[test]
    fn zero_demand_jobs_get_zero_slots(
        demands in prop::collection::vec(demand_strategy(), 0..30),
        zeros in prop::collection::vec(0usize..30, 1..10),
        capacity in 0usize..3000,
        eps in 0.0f64..=1.0,
    ) {
        let mut demands = demands;
        // Splice zero-demand jobs in among the live ones.
        for (k, z) in zeros.iter().enumerate() {
            let mut d = JobDemand::simple(1000 + k, 0.0, 1.5);
            d.downstream_tasks = 0.0;
            let at = (*z).min(demands.len());
            demands.insert(at, d);
        }
        let cfg = AllocConfig { fairness_eps: eps, ..Default::default() };
        let allocs = allocate(&demands, capacity, &cfg);
        for (a, d) in allocs.iter().zip(&demands) {
            if d.remaining_tasks == 0.0 && d.downstream_tasks == 0.0 {
                prop_assert_eq!(
                    a.slots, 0,
                    "zero-demand job {} was granted {} slots", d.job, a.slots
                );
            }
        }
    }

    /// All allocations from one call report the same regime, and that
    /// regime agrees with the paper's switch condition ΣV vs S.
    #[test]
    fn regime_is_uniform_and_matches_total_demand(
        demands in prop::collection::vec(demand_strategy(), 1..30),
        capacity in 1usize..2000,
    ) {
        use hopper::core::Regime;
        let cfg = AllocConfig::no_fairness();
        let allocs = allocate(&demands, capacity, &cfg);
        let total_v: f64 = demands.iter().map(|d| d.virtual_size()).sum();
        let expect = if total_v > capacity as f64 {
            Regime::Constrained
        } else {
            Regime::Proportional
        };
        for a in &allocs {
            prop_assert_eq!(a.regime, expect, "job {} regime mismatch", a.job);
        }
    }

    /// The event queue pops in nondecreasing time order, FIFO on ties.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..10_000, 0..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated on tie");
                }
            }
            last = Some((t, i));
        }
    }

    /// Pareto sampler honours its analytic complementary CDF.
    #[test]
    fn pareto_tail_is_correct(shape in 1.1f64..2.5, scale in 0.1f64..10.0, seed in 0u64..50) {
        let d = Dist::Pareto { shape, scale };
        let mut rng = rng_from_seed(seed);
        let n = 4000;
        let x = scale * 4.0;
        let hits = (0..n).filter(|_| d.sample(&mut rng) > x).count() as f64 / n as f64;
        let expect = d.ccdf(x);
        prop_assert!((hits - expect).abs() < 0.05, "empirical {hits} analytic {expect}");
    }

    /// Percentile is monotone in p and bounded by the sample range.
    #[test]
    fn percentile_monotone(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let p25 = percentile(&xs, 0.25);
        let p50 = percentile(&xs, 0.50);
        let p75 = percentile(&xs, 0.75);
        prop_assert!(p25 <= p50 && p50 <= p75);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p25 >= min && p75 <= max);
    }

    /// A worker episode never responds twice to the same scheduler within
    /// an episode, and always terminates within its response bound.
    #[test]
    fn episode_terminates_and_never_reprobes(
        entries in prop::collection::vec((0usize..8, 0u64..40, 1.0f64..300.0), 0..60),
        threshold in 0usize..6,
        seed in 0u64..20,
    ) {
        let queue: Vec<Reservation> = entries
            .iter()
            .map(|&(s, j, v)| Reservation {
                scheduler: s,
                job: j,
                virtual_size: v,
                remaining_tasks: v,
            })
            .collect();
        let mut ep = FreeSlotEpisode::new(threshold);
        let mut rng = rng_from_seed(seed);
        let mut probed: Vec<usize> = Vec::new();
        let mut steps = 0;
        while let WorkerAction::Respond { scheduler, job, kind } = ep.next_action(&queue, &mut rng)
        {
            if kind == hopper::core::ResponseKind::Refusable {
                prop_assert!(!probed.contains(&scheduler), "re-probed {scheduler}");
            }
            probed.push(scheduler);
            ep.mark_probed(scheduler);
            // Simulate a refusal so the episode keeps going.
            ep.record_refusal(scheduler, job, None);
            steps += 1;
            prop_assert!(steps <= threshold + 4, "episode exceeded its bound");
        }
    }
}
