//! Stability-frontier bisector tests (`hopper_experiment::stability`).
//!
//! The frontier machinery is pinned on an *analytic* reference workload:
//! single-phase jobs with a fixed task count and fixed β on one machine
//! with zero handoff and speculation disabled. Calibration makes offered
//! work equal capacity at `util = 1`, and nothing inflates executed work
//! (replicas are always local, no handoff, no speculative copies), so
//! the true saturation point is `util = 1` — the detected frontier must
//! bracket a neighborhood of it. The other invariants: the detector
//! never flags a clearly draining run, and `frontier_grid` is
//! bit-identical at every worker-thread count.

use hopper::experiment::{find_frontier, frontier_grid, saturated, ExperimentSpec, FrontierConfig};

/// The analytic reference spec: saturation at `util = 1` by construction
/// (see module docs). `seeds` carries the probe seed — `find_frontier`
/// reads only the first.
fn analytic_spec(jobs: usize, seed: u64) -> ExperimentSpec {
    ExperimentSpec::parse(&format!(
        "engine=central\n\
         policy=srpt\n\
         interactive=true\n\
         single_phase=true\n\
         fixed_tasks=40\n\
         fixed_beta=2\n\
         jobs={jobs}\n\
         machines=1\n\
         slots=80\n\
         handoff_ms=0\n\
         spec_min_elapsed_ms=1000000000\n\
         seeds={seed}\n"
    ))
    .expect("analytic spec parses")
}

/// The detected frontier brackets the analytic saturation point. The
/// tolerance band covers finite-run edge effects (the last arrival's
/// exponential-gap jitter moves the measured offered load a few percent;
/// measured brackets across seeds sit in [0.95, 1.12]).
#[test]
fn analytic_saturation_point_is_bracketed() {
    for seed in [1u64, 3] {
        let r = find_frontier(&analytic_spec(600, seed), &FrontierConfig::default())
            .expect("analytic probe runs");
        assert!(
            r.lo < r.hi,
            "seed {seed}: degenerate bracket [{}, {}]",
            r.lo,
            r.hi
        );
        assert!(
            r.lo >= 0.85 && r.hi <= 1.25,
            "seed {seed}: frontier [{:.3}, {:.3}] does not bracket util = 1",
            r.lo,
            r.hi
        );
    }
}

/// The detector never flags a draining run: well below the frontier the
/// backlog clears inside the arrival phase on every seed.
#[test]
fn detector_never_flags_a_draining_run() {
    for seed in [1u64, 7, 19] {
        for util in [0.5, 0.7] {
            let mut s = analytic_spec(400, seed);
            s.util = util;
            s.stream = true;
            s.telemetry_window_ms = 2_000;
            let out = s.run_one(seed).expect("draining probe runs");
            assert!(
                !saturated(out.report(), s.jobs),
                "seed {seed}, util {util}: draining run flagged as saturated"
            );
        }
    }
}

/// `frontier_grid` is a deterministic fan-out: the full result set is
/// bit-identical whatever the worker-thread count.
#[test]
fn frontier_grid_is_identical_across_thread_counts() {
    let mut diurnal = analytic_spec(300, 3);
    diurnal.rate_profile = "diurnal".into();
    diurnal.rate_period_ms = 20_000;
    let cells = [analytic_spec(300, 1), diurnal, analytic_spec(300, 7)];
    let cfg = FrontierConfig {
        iters: 4,
        ..FrontierConfig::default()
    };
    let serial = frontier_grid(&cells, &cfg, 1).expect("serial grid runs");
    let fanned = frontier_grid(&cells, &cfg, 4).expect("fanned grid runs");
    assert_eq!(
        serial, fanned,
        "frontier_grid results depend on the thread count"
    );
}
